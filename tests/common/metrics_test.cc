#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace datacon {

/// Test backdoor (friend of Histogram): constructs the torn state a
/// MergeFrom from a live source can produce — count/max ahead of the
/// bucket totals — without having to race real threads.
struct HistogramPeer {
  static void SetCount(Histogram* h, int64_t count) {
    h->count_.store(count, std::memory_order_relaxed);
  }
  static void SetMax(Histogram* h, int64_t max) {
    h->max_.store(max, std::memory_order_relaxed);
  }
};

namespace {

TEST(Timer, ElapsedIsNonNegativeAndMonotonic) {
  Timer t;
  int64_t a = t.ElapsedNs();
  int64_t b = t.ElapsedNs();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  // Burn a little time so the pre-reset reading is strictly positive.
  volatile int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  int64_t before = t.ElapsedNs();
  t.Reset();
  EXPECT_LE(t.ElapsedNs(), before + 1'000'000'000);
  EXPECT_GT(before, 0);
}

TEST(FormatDuration, PicksUnitByMagnitude) {
  EXPECT_EQ(FormatDurationNs(0), "0 ns");
  EXPECT_EQ(FormatDurationNs(412), "412 ns");
  EXPECT_EQ(FormatDurationNs(9'999), "9999 ns");
  EXPECT_EQ(FormatDurationNs(3'210'000), "3210.00 us");
  EXPECT_EQ(FormatDurationNs(12'500), "12.50 us");
  EXPECT_EQ(FormatDurationNs(12'500'000), "12.50 ms");
  EXPECT_EQ(FormatDurationNs(12'500'000'000), "12.50 s");
  EXPECT_EQ(FormatDurationNs(-1), "-");
}

TEST(CounterSet, AddAndGet) {
  CounterSet c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.Get("missing"), 0);
  c.Add("probes", 3);
  c.Add("probes", 4);
  c.Add("builds", 1);
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.Get("probes"), 7);
  EXPECT_EQ(c.Get("builds"), 1);
}

TEST(CounterSet, PreservesInsertionOrder) {
  CounterSet c;
  c.Add("z", 1);
  c.Add("a", 2);
  c.Add("m", 3);
  c.Add("z", 1);  // update must not reorder
  ASSERT_EQ(c.entries().size(), 3u);
  EXPECT_EQ(c.entries()[0].first, "z");
  EXPECT_EQ(c.entries()[1].first, "a");
  EXPECT_EQ(c.entries()[2].first, "m");
  EXPECT_EQ(c.entries()[0].second, 2);
}

TEST(ProfileNode, TreeConstructionAndFind) {
  ProfileNode root("evaluation");
  ProfileNode* comp = root.AddChild("component [E {tc}]");
  ProfileNode* round = comp->AddChild("round 1");
  round->counters().Add("tuples_considered", 5);
  EXPECT_EQ(root.Find("round 1"), round);
  EXPECT_EQ(root.Find("component [E {tc}]"), comp);
  EXPECT_EQ(root.Find("evaluation"), &root);
  EXPECT_EQ(root.Find("absent"), nullptr);
}

TEST(ProfileNode, ToTextIndentsAndMarksExecCounters) {
  ProfileNode root("evaluation");
  root.set_elapsed_ns(5000);
  ProfileNode* child = root.AddChild("round 1");
  child->counters().Add("delta", 7);
  child->exec().Add("chunks", 4);
  std::string text = root.ToText();
  EXPECT_NE(text.find("evaluation  (5000 ns)\n"), std::string::npos);
  EXPECT_NE(text.find("  round 1  delta=7  ~chunks=4"), std::string::npos);
}

TEST(ProfileNode, ToJsonShape) {
  ProfileNode root("q");
  root.set_elapsed_ns(42);
  root.counters().Add("rounds", 3);
  root.AddChild("child");
  EXPECT_EQ(root.ToJson(),
            "{\"name\":\"q\",\"elapsed_ns\":42,\"counters\":{\"rounds\":3},"
            "\"exec\":{},\"children\":[{\"name\":\"child\",\"elapsed_ns\":-1,"
            "\"counters\":{},\"exec\":{},\"children\":[]}]}");
}

TEST(ProfileNode, JsonEscapesSpecialCharacters) {
  ProfileNode root("a \"b\" \\ c\n");
  std::string json = root.ToJson();
  EXPECT_NE(json.find("\\\"b\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\ c\\n"), std::string::npos);
}

TEST(ProfileNode, CounterDigestIgnoresTimingAndExec) {
  // Two trees identical in logical counters but with different wall times
  // and scheduling detail must produce the same digest — this is the
  // contract the cross-thread-count determinism test relies on.
  ProfileNode a("evaluation");
  a.set_elapsed_ns(100);
  ProfileNode* ra = a.AddChild("round 1");
  ra->counters().Add("delta", 9);
  ra->exec().Add("chunks", 1);

  ProfileNode b("evaluation");
  b.set_elapsed_ns(999'999);
  ProfileNode* rb = b.AddChild("round 1");
  rb->counters().Add("delta", 9);
  rb->exec().Add("chunks", 8);
  rb->exec().Add("snapshots", 2);

  EXPECT_EQ(a.CounterDigest(), b.CounterDigest());
  EXPECT_NE(a.ToJson(), b.ToJson());

  // A logical-counter difference must change the digest.
  rb->counters().Add("delta", 1);
  EXPECT_NE(a.CounterDigest(), b.CounterDigest());
}

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(0.99), 0);
}

TEST(Histogram, SingleSamplePercentilesClampToMax) {
  Histogram h;
  h.Record(57);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 57);
  EXPECT_EQ(h.max(), 57);
  // 57 lands in the [32, 63] bucket; the clamp must report the recorded
  // max, not the bucket's upper bound.
  EXPECT_EQ(h.Percentile(0.5), 57);
  EXPECT_EQ(h.Percentile(1.0), 57);
}

TEST(Histogram, PercentilesWalkBuckets) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.sum(), 5050);
  EXPECT_EQ(h.max(), 100);
  // rank 50 falls inside the [32, 63] bucket (cumulative 31 -> 63).
  EXPECT_EQ(h.Percentile(0.5), 63);
  // rank 95 falls inside the [64, 127] bucket, clamped to the max of 100.
  EXPECT_EQ(h.Percentile(0.95), 100);
  EXPECT_EQ(h.Percentile(0.99), 100);
}

TEST(Histogram, ZerosAndNegativesShareBucketZero) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  h.Record(0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

TEST(Histogram, MergeAddsCountsAndRaisesMax) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.sum(), 1030);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_EQ(a.Percentile(1.0), 1000);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(Histogram, ConcurrentRecordLosesNoSamples) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) h.Record(i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.sum(),
            int64_t{kThreads} * kPerThread * (kPerThread + 1) / 2);
  EXPECT_EQ(h.max(), kPerThread);
}

TEST(Histogram, JsonShape) {
  Histogram h;
  h.Record(57);
  EXPECT_EQ(h.ToJson(),
            "{\"count\":1,\"sum\":57,\"max\":57,\"p50\":57,\"p95\":57,"
            "\"p99\":57}");
}

TEST(Histogram, PercentileSurvivesTornMergeCountAhead) {
  // Regression for the torn-merge skew documented on MergeFrom: a merge
  // from a live source can copy a count() larger than the bucket mass it
  // copied. The old Percentile scanned for a rank derived from count(),
  // ran past the last occupied bucket, and fell through to a max() the
  // buckets never justified. The clamp must pin the rank to the observed
  // bucket mass instead.
  Histogram h;
  h.Record(57);  // one sample in the [32, 63] bucket
  HistogramPeer::SetCount(&h, 1000);
  HistogramPeer::SetMax(&h, 999'999);
  // The largest observed bucket's upper bound (63) — never the torn
  // 999'999 the unclamped scan used to fall through to.
  EXPECT_EQ(h.Percentile(0.99), 63);
  EXPECT_EQ(h.Percentile(1.0), 63);
  EXPECT_EQ(h.Percentile(0.0), 63);
}

TEST(Histogram, PercentileZeroBucketMassReportsZero) {
  // The extreme torn state: count advanced, no bucket copied yet.
  Histogram h;
  HistogramPeer::SetCount(&h, 5);
  HistogramPeer::SetMax(&h, 123);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(Counter, AddIncrementReadAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(9);
  EXPECT_EQ(c.value(), 10);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Counter, ConcurrentIncrementsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistry, PreservesInsertionOrderAndPointerStability) {
  MetricsRegistry registry;
  Histogram* z = registry.GetHistogram("z.metric");
  Histogram* a = registry.GetHistogram("a.metric");
  EXPECT_EQ(registry.GetHistogram("z.metric"), z);
  EXPECT_EQ(registry.GetHistogram("a.metric"), a);
  z->Record(4);
  a->Record(9);
  std::string json = registry.ToJson();
  // z registered first, so it serializes first despite sorting later
  // alphabetically.
  EXPECT_LT(json.find("z.metric"), json.find("a.metric"));
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
}

TEST(MetricsRegistry, ResetKeepsNamesDropsSamples) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency_ns");
  h->Record(123);
  registry.Reset();
  EXPECT_EQ(registry.GetHistogram("latency_ns"), h);
  EXPECT_EQ(h->count(), 0);
  EXPECT_NE(registry.ToText().find("latency_ns"), std::string::npos);
}

TEST(MetricsRegistry, CountersArePointerStableAndSerialized) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("cache.hits");
  Counter* misses = registry.GetCounter("cache.misses");
  EXPECT_EQ(registry.GetCounter("cache.hits"), hits);
  hits->Add(3);
  misses->Increment();
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"cache.hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cache.misses\":1"), std::string::npos);
  // Insertion order, as with histograms.
  EXPECT_LT(json.find("cache.hits"), json.find("cache.misses"));
  EXPECT_NE(registry.ToText().find("cache.hits  count=3"),
            std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesCountersKeepsRegistration) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("cache.invalidations");
  c->Add(7);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("cache.invalidations"), c);
  EXPECT_EQ(c->value(), 0);
  EXPECT_NE(registry.ToText().find("cache.invalidations  count=0"),
            std::string::npos);
}

TEST(MetricsRegistry, MergeFromAggregatesHistogramsAndCounters) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetHistogram("query.latency_ns")->Record(100);
  a.GetCounter("cache.hits")->Add(2);
  b.GetHistogram("query.latency_ns")->Record(900);
  b.GetHistogram("only.in.b")->Record(5);
  b.GetCounter("cache.hits")->Add(3);
  b.GetCounter("only.in.b")->Increment();

  a.MergeFrom(b);
  EXPECT_EQ(a.GetHistogram("query.latency_ns")->count(), 2);
  EXPECT_EQ(a.GetHistogram("query.latency_ns")->sum(), 1000);
  EXPECT_EQ(a.GetHistogram("only.in.b")->count(), 1);
  EXPECT_EQ(a.GetCounter("cache.hits")->value(), 5);
  EXPECT_EQ(a.GetCounter("only.in.b")->value(), 1);
  // The source is left untouched.
  EXPECT_EQ(b.GetHistogram("query.latency_ns")->count(), 1);
  EXPECT_EQ(b.GetCounter("cache.hits")->value(), 3);
  // Merging twice double-counts by design (it is an additive feed).
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("cache.hits")->value(), 8);
}

TEST(MetricsRegistry, ToPrometheusRendersHistogramsAndCounters) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("query.latency_ns");
  h->Record(0);
  h->Record(3);   // bucket [2, 3]
  h->Record(57);  // bucket [32, 63]
  registry.GetCounter("cache.hits")->Add(4);

  std::string prom = registry.ToPrometheus();
  // Names are prefixed and sanitized ('.' -> '_').
  EXPECT_NE(prom.find("# TYPE datacon_query_latency_ns histogram"),
            std::string::npos)
      << prom;
  // Cumulative buckets: le="0" holds the zero sample, le="3" two samples,
  // le="63" all three, then +Inf == _count.
  EXPECT_NE(prom.find("datacon_query_latency_ns_bucket{le=\"0\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("datacon_query_latency_ns_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("datacon_query_latency_ns_bucket{le=\"63\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("datacon_query_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("datacon_query_latency_ns_sum 60"), std::string::npos);
  EXPECT_NE(prom.find("datacon_query_latency_ns_count 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE datacon_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("datacon_cache_hits_total 4"), std::string::npos);
  // Every non-comment line is "name{labels} value" or "name value".
  EXPECT_EQ(prom.back(), '\n');
}

TEST(SlowQueryLog, EntriesCarryWallAndSteadyTimestamps) {
  SlowQueryLog log(4);
  log.Record("QUERY E {tc};", 2'000'000, "rounds=3");
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_GT(entries[0].wall_us, 0);
  EXPECT_GE(entries[0].steady_ns, 0);
  std::string text = log.ToText();
  // The rendered timestamp line sits between the statement and the digest.
  EXPECT_NE(text.find("at "), std::string::npos) << text;
  EXPECT_NE(text.find("steady="), std::string::npos) << text;
  EXPECT_LT(text.find("QUERY E {tc};"), text.find("at "));
  EXPECT_LT(text.find("at "), text.find("rounds=3"));
}

TEST(FormatWallTime, RendersIsoUtc) {
  EXPECT_EQ(FormatWallTimeUs(1'000'000 + 123'456),
            "1970-01-01T00:00:01.123456Z");
  EXPECT_EQ(FormatWallTimeUs(0), "-");
  EXPECT_EQ(FormatWallTimeUs(-5), "-");
}

TEST(SlowQueryLog, ThresholdGatesAdmission) {
  SlowQueryLog log(4);
  log.set_threshold_ns(1000);
  EXPECT_FALSE(log.WouldRecord(999));
  EXPECT_TRUE(log.WouldRecord(1000));
  log.Record("fast", 999, "");
  log.Record("slow", 1000, "");
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].statement, "slow");
}

TEST(SlowQueryLog, KeepsSlowestFirstAndEvictsFastest) {
  SlowQueryLog log(3);
  log.Record("a", 100, "");
  log.Record("b", 300, "");
  log.Record("c", 200, "");
  log.Record("d", 250, "");  // evicts a (100), the fastest retained
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].statement, "b");
  EXPECT_EQ(entries[1].statement, "d");
  EXPECT_EQ(entries[2].statement, "c");
  // Once full, a query no slower than the current fastest is not admitted.
  EXPECT_FALSE(log.WouldRecord(150));
  EXPECT_TRUE(log.WouldRecord(201));
}

TEST(SlowQueryLog, TiesKeepOlderEntriesFirst) {
  SlowQueryLog log(2);
  log.Record("first", 500, "");
  log.Record("second", 500, "");
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].statement, "first");
  EXPECT_EQ(entries[1].statement, "second");
  // A third tie must not evict an equal-latency entry.
  EXPECT_FALSE(log.WouldRecord(500));
}

TEST(SlowQueryLog, ClearEmptiesAndToTextRendersDigest) {
  SlowQueryLog log(4);
  log.Record("QUERY E {tc};", 2'000'000, "rounds=3 inserted=7");
  std::string text = log.ToText();
  EXPECT_NE(text.find("QUERY E {tc};"), std::string::npos);
  EXPECT_NE(text.find("rounds=3 inserted=7"), std::string::npos);
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
}

TEST(SlowQueryLog, ZeroCapacityNeverRecords) {
  SlowQueryLog log(0);
  EXPECT_FALSE(log.WouldRecord(1'000'000));
  log.Record("q", 1'000'000, "");
  EXPECT_TRUE(log.Entries().empty());
}

}  // namespace
}  // namespace datacon
