#include "common/metrics.h"

#include <gtest/gtest.h>

namespace datacon {
namespace {

TEST(Timer, ElapsedIsNonNegativeAndMonotonic) {
  Timer t;
  int64_t a = t.ElapsedNs();
  int64_t b = t.ElapsedNs();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  // Burn a little time so the pre-reset reading is strictly positive.
  volatile int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  int64_t before = t.ElapsedNs();
  t.Reset();
  EXPECT_LE(t.ElapsedNs(), before + 1'000'000'000);
  EXPECT_GT(before, 0);
}

TEST(FormatDuration, PicksUnitByMagnitude) {
  EXPECT_EQ(FormatDurationNs(0), "0 ns");
  EXPECT_EQ(FormatDurationNs(412), "412 ns");
  EXPECT_EQ(FormatDurationNs(9'999), "9999 ns");
  EXPECT_EQ(FormatDurationNs(3'210'000), "3210.00 us");
  EXPECT_EQ(FormatDurationNs(12'500), "12.50 us");
  EXPECT_EQ(FormatDurationNs(12'500'000), "12.50 ms");
  EXPECT_EQ(FormatDurationNs(12'500'000'000), "12.50 s");
  EXPECT_EQ(FormatDurationNs(-1), "-");
}

TEST(CounterSet, AddAndGet) {
  CounterSet c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.Get("missing"), 0);
  c.Add("probes", 3);
  c.Add("probes", 4);
  c.Add("builds", 1);
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.Get("probes"), 7);
  EXPECT_EQ(c.Get("builds"), 1);
}

TEST(CounterSet, PreservesInsertionOrder) {
  CounterSet c;
  c.Add("z", 1);
  c.Add("a", 2);
  c.Add("m", 3);
  c.Add("z", 1);  // update must not reorder
  ASSERT_EQ(c.entries().size(), 3u);
  EXPECT_EQ(c.entries()[0].first, "z");
  EXPECT_EQ(c.entries()[1].first, "a");
  EXPECT_EQ(c.entries()[2].first, "m");
  EXPECT_EQ(c.entries()[0].second, 2);
}

TEST(ProfileNode, TreeConstructionAndFind) {
  ProfileNode root("evaluation");
  ProfileNode* comp = root.AddChild("component [E {tc}]");
  ProfileNode* round = comp->AddChild("round 1");
  round->counters().Add("tuples_considered", 5);
  EXPECT_EQ(root.Find("round 1"), round);
  EXPECT_EQ(root.Find("component [E {tc}]"), comp);
  EXPECT_EQ(root.Find("evaluation"), &root);
  EXPECT_EQ(root.Find("absent"), nullptr);
}

TEST(ProfileNode, ToTextIndentsAndMarksExecCounters) {
  ProfileNode root("evaluation");
  root.set_elapsed_ns(5000);
  ProfileNode* child = root.AddChild("round 1");
  child->counters().Add("delta", 7);
  child->exec().Add("chunks", 4);
  std::string text = root.ToText();
  EXPECT_NE(text.find("evaluation  (5000 ns)\n"), std::string::npos);
  EXPECT_NE(text.find("  round 1  delta=7  ~chunks=4"), std::string::npos);
}

TEST(ProfileNode, ToJsonShape) {
  ProfileNode root("q");
  root.set_elapsed_ns(42);
  root.counters().Add("rounds", 3);
  root.AddChild("child");
  EXPECT_EQ(root.ToJson(),
            "{\"name\":\"q\",\"elapsed_ns\":42,\"counters\":{\"rounds\":3},"
            "\"exec\":{},\"children\":[{\"name\":\"child\",\"elapsed_ns\":-1,"
            "\"counters\":{},\"exec\":{},\"children\":[]}]}");
}

TEST(ProfileNode, JsonEscapesSpecialCharacters) {
  ProfileNode root("a \"b\" \\ c\n");
  std::string json = root.ToJson();
  EXPECT_NE(json.find("\\\"b\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\ c\\n"), std::string::npos);
}

TEST(ProfileNode, CounterDigestIgnoresTimingAndExec) {
  // Two trees identical in logical counters but with different wall times
  // and scheduling detail must produce the same digest — this is the
  // contract the cross-thread-count determinism test relies on.
  ProfileNode a("evaluation");
  a.set_elapsed_ns(100);
  ProfileNode* ra = a.AddChild("round 1");
  ra->counters().Add("delta", 9);
  ra->exec().Add("chunks", 1);

  ProfileNode b("evaluation");
  b.set_elapsed_ns(999'999);
  ProfileNode* rb = b.AddChild("round 1");
  rb->counters().Add("delta", 9);
  rb->exec().Add("chunks", 8);
  rb->exec().Add("snapshots", 2);

  EXPECT_EQ(a.CounterDigest(), b.CounterDigest());
  EXPECT_NE(a.ToJson(), b.ToJson());

  // A logical-counter difference must change the digest.
  rb->counters().Add("delta", 1);
  EXPECT_NE(a.CounterDigest(), b.CounterDigest());
}

}  // namespace
}  // namespace datacon
