#include "common/string_util.h"

#include <gtest/gtest.h>

namespace datacon {
namespace {

TEST(Join, Basic) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Split, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(Split, RoundTripsWithJoin) {
  std::vector<std::string> parts = {"x", "yz", "", "w"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(StripWhitespace, Basic) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(StartsWith("constructor", "con"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("abc", "bc"));
}

TEST(AsciiCase, Basic) {
  EXPECT_EQ(AsciiToLower("AhEaD_2"), "ahead_2");
  EXPECT_EQ(AsciiToUpper("ahead"), "AHEAD");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(JsonEscape, QuotesPlainText) {
  EXPECT_EQ(JsonEscape(""), "\"\"");
  EXPECT_EQ(JsonEscape("abc 123"), "\"abc 123\"");
}

TEST(JsonEscape, EscapesMetacharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonEscape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonEscape("a\nb\tc\r"), "\"a\\nb\\tc\\r\"");
  EXPECT_EQ(JsonEscape("\b\f"), "\"\\b\\f\"");
}

TEST(JsonEscape, ControlCharactersUseUnicodeForm) {
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)),
            "\"\\u0001\\u001f\"");
}

TEST(AppendJsonEscaped, AppendsInPlace) {
  std::string out = "{\"k\":";
  AppendJsonEscaped(&out, "v\"1");
  EXPECT_EQ(out, "{\"k\":\"v\\\"1\"");
}

}  // namespace
}  // namespace datacon
