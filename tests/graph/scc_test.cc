#include "graph/scc.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "graph/digraph.h"

namespace datacon {
namespace {

TEST(Digraph, EdgesAndReachability) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.Reachable(0, 2));
  EXPECT_TRUE(g.Reachable(3, 3));
  EXPECT_FALSE(g.Reachable(2, 0));
}

TEST(Digraph, AddNode) {
  Digraph g(1);
  EXPECT_EQ(g.AddNode(), 1);
  EXPECT_EQ(g.node_count(), 2);
}

TEST(Scc, SingletonWithoutSelfLoopIsAcyclic) {
  Digraph g(1);
  SccDecomposition scc = ComputeScc(g);
  ASSERT_EQ(scc.component_count(), 1);
  EXPECT_FALSE(scc.cyclic[0]);
}

TEST(Scc, SelfLoopIsCyclic) {
  Digraph g(1);
  g.AddEdge(0, 0);
  SccDecomposition scc = ComputeScc(g);
  ASSERT_EQ(scc.component_count(), 1);
  EXPECT_TRUE(scc.cyclic[0]);
}

TEST(Scc, TwoNodeCycle) {
  // The paper's mutual recursion shape: ahead <-> above.
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.component_count(), 1);
  EXPECT_TRUE(scc.cyclic[0]);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
}

TEST(Scc, ChainDecomposesIntoSingletons) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.component_count(), 4);
  for (bool c : scc.cyclic) EXPECT_FALSE(c);
}

TEST(Scc, TopologicalOrderPutsDependenciesFirst) {
  // 0 -> 1 -> 2 with edges read as "depends on": 2's component must come
  // before 1's, which must come before 0's.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  SccDecomposition scc = ComputeScc(g);
  std::vector<int> position(3);
  for (size_t i = 0; i < scc.topological_order.size(); ++i) {
    for (int node : scc.components[static_cast<size_t>(
             scc.topological_order[i])]) {
      position[static_cast<size_t>(node)] = static_cast<int>(i);
    }
  }
  EXPECT_LT(position[2], position[1]);
  EXPECT_LT(position[1], position[0]);
}

TEST(Scc, MixedGraph) {
  // Component {1,2} cyclic, fed by 0, feeding 3.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  g.AddEdge(2, 3);
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.component_count(), 3);
  EXPECT_EQ(scc.component_of[1], scc.component_of[2]);
  EXPECT_NE(scc.component_of[0], scc.component_of[1]);
  int cyclic_count = 0;
  for (bool c : scc.cyclic) cyclic_count += c ? 1 : 0;
  EXPECT_EQ(cyclic_count, 1);
}

TEST(Scc, DeepChainDoesNotOverflow) {
  // The iterative Tarjan must handle graphs far deeper than any thread
  // stack would allow for the recursive formulation.
  const int n = 200000;
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  SccDecomposition scc = ComputeScc(g);
  EXPECT_EQ(scc.component_count(), n);
}

/// Reference SCC relation: u,v in the same component iff mutually
/// reachable.
class SccRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SccRandomTest, MatchesMutualReachability) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  const int n = 24;
  Digraph g(n);
  std::uniform_int_distribution<int> pick(0, n - 1);
  for (int e = 0; e < 40; ++e) {
    int a = pick(rng);
    int b = pick(rng);
    g.AddEdge(a, b);
  }
  SccDecomposition scc = ComputeScc(g);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      bool same = scc.component_of[static_cast<size_t>(u)] ==
                  scc.component_of[static_cast<size_t>(v)];
      bool mutual = g.Reachable(u, v) && g.Reachable(v, u);
      EXPECT_EQ(same, mutual) << "u=" << u << " v=" << v;
    }
  }
  // Topological order property: for every edge u->v, v's component comes
  // no later than u's.
  std::vector<int> position(scc.components.size());
  for (size_t i = 0; i < scc.topological_order.size(); ++i) {
    position[static_cast<size_t>(scc.topological_order[i])] =
        static_cast<int>(i);
  }
  for (int u = 0; u < n; ++u) {
    for (int v : g.OutEdges(u)) {
      EXPECT_LE(position[static_cast<size_t>(
                    scc.component_of[static_cast<size_t>(v)])],
                position[static_cast<size_t>(
                    scc.component_of[static_cast<size_t>(u)])]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace datacon
