#include "core/semantics.h"

#include <gtest/gtest.h>

#include "ast/builder.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

class SemanticsTest : public ::testing::Test {
 protected:
  SemanticsTest() {
    EXPECT_TRUE(catalog_
                    .DefineRelationType(
                        "infrontrel", Schema({{"front", ValueType::kString},
                                              {"back", ValueType::kString}}))
                    .ok());
    EXPECT_TRUE(catalog_
                    .DefineRelationType(
                        "aheadrel", Schema({{"head", ValueType::kString},
                                            {"tail", ValueType::kString}}))
                    .ok());
    EXPECT_TRUE(catalog_
                    .DefineRelationType(
                        "numrel", Schema({{"n", ValueType::kInt}}))
                    .ok());
    EXPECT_TRUE(catalog_.CreateRelation("Infront", "infrontrel").ok());
    EXPECT_TRUE(catalog_.CreateRelation("Numbers", "numrel").ok());
    EXPECT_TRUE(catalog_
                    .DefineSelector(std::make_shared<SelectorDecl>(
                        "hidden_by", FormalRelation{"Rel", "infrontrel"},
                        std::vector<FormalScalar>{{"Obj", ValueType::kString}},
                        "r", Eq(FieldRef("r", "front"), Param("Obj"))))
                    .ok());
    EXPECT_TRUE(catalog_
                    .DefineConstructor(std::make_shared<ConstructorDecl>(
                        "ahead", FormalRelation{"Rel", "infrontrel"},
                        std::vector<FormalRelation>{},
                        std::vector<FormalScalar>{}, "aheadrel",
                        Union({IdentityBranch("r", Rel("Rel"), True())})))
                    .ok());
  }

  AnalysisScope Scope() {
    AnalysisScope scope;
    scope.catalog = &catalog_;
    return scope;
  }

  Catalog catalog_;
};

TEST_F(SemanticsTest, RangeSchemaOfPlainRelation) {
  AnalysisScope scope = Scope();
  Result<const Schema*> schema = RangeSchemaOf(*Rel("Infront"), scope);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value()->field(0).name, "front");
}

TEST_F(SemanticsTest, RangeSchemaOfUnknownRelationFails) {
  AnalysisScope scope = Scope();
  EXPECT_EQ(RangeSchemaOf(*Rel("Nope"), scope).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SemanticsTest, RangeSchemaOfFormal) {
  AnalysisScope scope = Scope();
  scope.relation_formals["Rel"] = "infrontrel";
  Result<const Schema*> schema = RangeSchemaOf(*Rel("Rel"), scope);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value()->arity(), 2);
}

TEST_F(SemanticsTest, SelectorPreservesSchema) {
  AnalysisScope scope = Scope();
  Result<const Schema*> schema = RangeSchemaOf(
      *Selected(Rel("Infront"), "hidden_by", {Str("table")}), scope);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value()->field(1).name, "back");
}

TEST_F(SemanticsTest, SelectorArgArityChecked) {
  AnalysisScope scope = Scope();
  EXPECT_EQ(RangeSchemaOf(*Selected(Rel("Infront"), "hidden_by", {}), scope)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, SelectorArgTypeChecked) {
  AnalysisScope scope = Scope();
  EXPECT_EQ(RangeSchemaOf(
                *Selected(Rel("Infront"), "hidden_by", {Int(3)}), scope)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, SelectorBaseTypeChecked) {
  AnalysisScope scope = Scope();
  // hidden_by expects infrontrel fields; Numbers has {n}.
  EXPECT_EQ(RangeSchemaOf(
                *Selected(Rel("Numbers"), "hidden_by", {Str("x")}), scope)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, ConstructorChangesSchema) {
  AnalysisScope scope = Scope();
  Result<const Schema*> schema =
      RangeSchemaOf(*Constructed(Rel("Infront"), "ahead"), scope);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value()->field(0).name, "head");
}

TEST_F(SemanticsTest, ConstructorBaseTypeChecked) {
  AnalysisScope scope = Scope();
  EXPECT_EQ(RangeSchemaOf(*Constructed(Rel("Numbers"), "ahead"), scope)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, ConstructorArgArityChecked) {
  AnalysisScope scope = Scope();
  EXPECT_EQ(RangeSchemaOf(
                *Constructed(Rel("Infront"), "ahead", {Rel("Infront")}),
                scope)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, TermTypes) {
  AnalysisScope scope = Scope();
  scope.scalar_params["Obj"] = ValueType::kString;
  EXPECT_EQ(TermTypeOf(*Int(1), scope).value(), ValueType::kInt);
  EXPECT_EQ(TermTypeOf(*Str("x"), scope).value(), ValueType::kString);
  EXPECT_EQ(TermTypeOf(*Param("Obj"), scope).value(), ValueType::kString);
  EXPECT_EQ(TermTypeOf(*Add(Int(1), Int(2)), scope).value(), ValueType::kInt);
  EXPECT_EQ(TermTypeOf(*Param("zz"), scope).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(TermTypeOf(*Add(Str("a"), Int(1)), scope).status().code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckPredComparisonTypes) {
  AnalysisScope scope = Scope();
  Result<const Schema*> schema = RangeSchemaOf(*Rel("Infront"), scope);
  scope.vars["r"] = schema.value();
  PredPtr ok = Eq(FieldRef("r", "front"), Str("x"));
  EXPECT_TRUE(CheckPred(*ok, &scope).ok());
  PredPtr bad = Eq(FieldRef("r", "front"), Int(1));
  EXPECT_EQ(CheckPred(*bad, &scope).code(), StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckPredQuantifierScoping) {
  AnalysisScope scope = Scope();
  PredPtr p = Some("n", Rel("Numbers"), Eq(FieldRef("n", "n"), Int(1)));
  EXPECT_TRUE(CheckPred(*p, &scope).ok());
  // The quantifier variable is gone afterwards.
  EXPECT_EQ(scope.vars.count("n"), 0u);
  // Body referencing an unbound variable fails.
  PredPtr bad = Some("n", Rel("Numbers"), Eq(FieldRef("m", "n"), Int(1)));
  EXPECT_EQ(CheckPred(*bad, &scope).code(), StatusCode::kNotFound);
}

TEST_F(SemanticsTest, CheckPredRejectsShadowing) {
  AnalysisScope scope = Scope();
  PredPtr p = Some("n", Rel("Numbers"),
                   Some("n", Rel("Numbers"), True()));
  EXPECT_EQ(CheckPred(*p, &scope).code(), StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckPredMembership) {
  AnalysisScope scope = Scope();
  PredPtr ok = In({Int(1)}, Rel("Numbers"));
  EXPECT_TRUE(CheckPred(*ok, &scope).ok());
  PredPtr arity = In({Int(1), Int(2)}, Rel("Numbers"));
  EXPECT_EQ(CheckPred(*arity, &scope).code(), StatusCode::kTypeError);
  PredPtr type = In({Str("x")}, Rel("Numbers"));
  EXPECT_EQ(CheckPred(*type, &scope).code(), StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckSelectorDecl) {
  SelectorDecl good("s", FormalRelation{"Rel", "infrontrel"}, {}, "r",
                    Eq(FieldRef("r", "front"), Str("x")));
  EXPECT_TRUE(CheckSelectorDecl(good, catalog_).ok());

  SelectorDecl bad_type("s", FormalRelation{"Rel", "nosuch"}, {}, "r", True());
  EXPECT_EQ(CheckSelectorDecl(bad_type, catalog_).code(),
            StatusCode::kNotFound);

  SelectorDecl bad_field("s", FormalRelation{"Rel", "infrontrel"}, {}, "r",
                         Eq(FieldRef("r", "nofield"), Str("x")));
  EXPECT_EQ(CheckSelectorDecl(bad_field, catalog_).code(),
            StatusCode::kNotFound);

  SelectorDecl dup_param(
      "s", FormalRelation{"Rel", "infrontrel"},
      {{"p", ValueType::kInt}, {"p", ValueType::kString}}, "r", True());
  EXPECT_EQ(CheckSelectorDecl(dup_param, catalog_).code(),
            StatusCode::kTypeError);
}

ConstructorDecl MakeCtor(const std::string& result_type, CalcExprPtr body) {
  return ConstructorDecl("c2", FormalRelation{"Rel", "infrontrel"}, {}, {},
                         result_type, std::move(body));
}

TEST_F(SemanticsTest, CheckConstructorIdentityBranchCompatibility) {
  // infrontrel -> aheadrel is positionally compatible.
  EXPECT_TRUE(CheckConstructorDecl(
                  MakeCtor("aheadrel",
                           Union({IdentityBranch("r", Rel("Rel"), True())})),
                  catalog_)
                  .ok());
  // infrontrel -> numrel is not.
  EXPECT_EQ(CheckConstructorDecl(
                MakeCtor("numrel",
                         Union({IdentityBranch("r", Rel("Rel"), True())})),
                catalog_)
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckConstructorTargetArity) {
  CalcExprPtr body = Union({MakeBranch(
      {FieldRef("r", "front")}, {Each("r", Rel("Rel"))}, True())});
  EXPECT_EQ(CheckConstructorDecl(MakeCtor("aheadrel", body), catalog_).code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckConstructorTargetTypes) {
  CalcExprPtr body = Union({MakeBranch(
      {FieldRef("r", "front"), Int(3)}, {Each("r", Rel("Rel"))}, True())});
  EXPECT_EQ(CheckConstructorDecl(MakeCtor("aheadrel", body), catalog_).code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckConstructorEmptyBody) {
  EXPECT_EQ(
      CheckConstructorDecl(MakeCtor("aheadrel", Union({})), catalog_).code(),
      StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckConstructorDuplicateBranchVars) {
  CalcExprPtr body = Union({MakeBranch(
      {FieldRef("r", "front"), FieldRef("r", "back")},
      {Each("r", Rel("Rel")), Each("r", Rel("Rel"))}, True())});
  EXPECT_EQ(CheckConstructorDecl(MakeCtor("aheadrel", body), catalog_).code(),
            StatusCode::kTypeError);
}

TEST_F(SemanticsTest, CheckQueryAgainstSchema) {
  CalcExprPtr expr = Union({IdentityBranch("q", Rel("Infront"), True())});
  Schema compatible({{"a", ValueType::kString}, {"b", ValueType::kString}});
  EXPECT_TRUE(CheckQuery(*expr, catalog_, compatible).ok());
  Schema incompatible({{"a", ValueType::kInt}});
  EXPECT_FALSE(CheckQuery(*expr, catalog_, incompatible).ok());
}

TEST_F(SemanticsTest, CheckQueryWithPlaceholders) {
  CalcExprPtr expr = Union({IdentityBranch(
      "q", Rel("Infront"), Eq(FieldRef("q", "front"), Param("p")))});
  Schema schema({{"a", ValueType::kString}, {"b", ValueType::kString}});
  EXPECT_EQ(CheckQuery(*expr, catalog_, schema).code(), StatusCode::kNotFound);
  EXPECT_TRUE(CheckQuery(*expr, catalog_, schema,
                         {{"p", ValueType::kString}})
                  .ok());
}

TEST_F(SemanticsTest, InferQuerySchemaIdentity) {
  CalcExprPtr expr = Union({IdentityBranch("q", Rel("Infront"), True())});
  Result<Schema> schema = InferQuerySchema(*expr, catalog_);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().field(0).name, "front");
  // Derived results have set semantics regardless of base keys.
  EXPECT_TRUE(schema.value().KeyIsAllAttributes());
}

TEST_F(SemanticsTest, InferQuerySchemaFromTargets) {
  CalcExprPtr expr = Union({MakeBranch(
      {FieldRef("q", "back"), Add(Int(1), Int(2))},
      {Each("q", Rel("Infront"))}, True())});
  Result<Schema> schema = InferQuerySchema(*expr, catalog_);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().field(0).name, "back");
  EXPECT_EQ(schema.value().field(0).type, ValueType::kString);
  EXPECT_EQ(schema.value().field(1).type, ValueType::kInt);
}

TEST_F(SemanticsTest, InferQuerySchemaDisambiguatesDuplicateNames) {
  CalcExprPtr expr = Union({MakeBranch(
      {FieldRef("q", "front"), FieldRef("p", "front")},
      {Each("q", Rel("Infront")), Each("p", Rel("Infront"))}, True())});
  Result<Schema> schema = InferQuerySchema(*expr, catalog_);
  ASSERT_TRUE(schema.ok());
  EXPECT_NE(schema.value().field(0).name, schema.value().field(1).name);
}

TEST_F(SemanticsTest, InferQuerySchemaChecksAllBranches) {
  CalcExprPtr expr = Union({
      IdentityBranch("q", Rel("Infront"), True()),
      IdentityBranch("p", Rel("Numbers"), True()),  // arity mismatch
  });
  EXPECT_FALSE(InferQuerySchema(*expr, catalog_).ok());
}

}  // namespace
}  // namespace datacon
