// Commit-time enforcement of declared integrity constraints: violating
// mutations must be rejected atomically (relation tuple sets exactly as
// before), the simplified delta-driven checks must agree with full
// re-evaluation, and the PRAGMA CONSTRAINTS = OFF escape hatch must admit
// tuples whose violations then surface on the next checked statement.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/constraint.h"
#include "ast/builder.h"
#include "common/metrics.h"
#include "core/database.h"
#include "lang/interpreter.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

std::unique_ptr<Database> GraphDb(DatabaseOptions options = {}) {
  auto db = std::make_unique<Database>(options);
  EXPECT_TRUE(db->DefineRelationType("edgerel",
                                     Schema({{"src", ValueType::kInt},
                                             {"dst", ValueType::kInt}}))
                  .ok());
  EXPECT_TRUE(db->DefineRelationType("markrel",
                                     Schema({{"node", ValueType::kInt}}))
                  .ok());
  EXPECT_TRUE(db->CreateRelation("Edge", "edgerel").ok());
  EXPECT_TRUE(db->CreateRelation("Mark", "markrel").ok());
  return db;
}

ConstraintDeclPtr NoSelfLoop() {
  return std::make_shared<const ConstraintDecl>(
      "no_self_loop", std::vector<Binding>{Each("p", Rel("Edge"))},
      Eq(FieldRef("p", "src"), FieldRef("p", "dst")));
}

ConstraintDeclPtr MarkRefsEdge() {
  return std::make_shared<const ConstraintDecl>(
      "mark_refs_edge", "node", Rel("Mark"), "src", Rel("Edge"));
}

Tuple Edge2(int64_t a, int64_t b) {
  return Tuple({Value::Int(a), Value::Int(b)});
}

std::vector<Tuple> SortedTuples(const Database& db, const std::string& name) {
  Result<const Relation*> rel = db.GetRelation(name);
  EXPECT_TRUE(rel.ok());
  return rel.value()->SortedTuples();
}

TEST(ConstraintEnforcement, ViolatingInsertIsRejectedAndRolledBack) {
  std::unique_ptr<Database> db = GraphDb();
  ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
  ASSERT_TRUE(db->Insert("Edge", Edge2(1, 2)).ok());
  std::vector<Tuple> before = SortedTuples(*db, "Edge");

  Status violation = db->Insert("Edge", Edge2(3, 3));
  EXPECT_EQ(violation.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(violation.message().find("no_self_loop"), std::string::npos);
  EXPECT_EQ(SortedTuples(*db, "Edge"), before);

  // The database is still usable after the rejection.
  EXPECT_TRUE(db->Insert("Edge", Edge2(3, 4)).ok());
}

TEST(ConstraintEnforcement, BatchInsertIsAtomic) {
  std::unique_ptr<Database> db = GraphDb();
  ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
  ASSERT_TRUE(db->Insert("Edge", Edge2(1, 2)).ok());
  std::vector<Tuple> before = SortedTuples(*db, "Edge");

  // Two clean tuples around one violating tuple: nothing may stick.
  Status violation = db->InsertAll(
      "Edge", {Edge2(5, 6), Edge2(7, 7), Edge2(8, 9)});
  EXPECT_EQ(violation.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(SortedTuples(*db, "Edge"), before);
}

TEST(ConstraintEnforcement, ViolatingAssignIsRolledBack) {
  std::unique_ptr<Database> db = GraphDb();
  ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
  ASSERT_TRUE(db->Insert("Edge", Edge2(1, 2)).ok());
  std::vector<Tuple> before = SortedTuples(*db, "Edge");

  Relation bad(Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}}));
  ASSERT_TRUE(bad.Insert(Edge2(4, 4)).ok());
  EXPECT_EQ(db->Assign("Edge", bad).code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(SortedTuples(*db, "Edge"), before);
}

TEST(ConstraintEnforcement, ViolatingDefineLeavesCatalogUntouched) {
  std::unique_ptr<Database> db = GraphDb();
  ASSERT_TRUE(db->Insert("Edge", Edge2(5, 5)).ok());
  Status refused = db->DefineConstraint(NoSelfLoop());
  EXPECT_EQ(refused.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(db->catalog().constraints().size(), 0u);
  // A later insert is unchecked — the constraint never registered.
  EXPECT_TRUE(db->Insert("Edge", Edge2(6, 6)).ok());
}

TEST(ConstraintEnforcement, DuplicateNameIsAlreadyExists) {
  std::unique_ptr<Database> db = GraphDb();
  ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
  EXPECT_EQ(db->DefineConstraint(NoSelfLoop()).code(),
            StatusCode::kAlreadyExists);
}

TEST(ConstraintEnforcement, ForeignKeySidesBehaveAsymmetrically) {
  std::unique_ptr<Database> db = GraphDb();
  ASSERT_TRUE(db->DefineConstraint(MarkRefsEdge()).ok());
  ASSERT_TRUE(db->Insert("Edge", Edge2(1, 2)).ok());
  // Referencing side: must match an Edge source.
  EXPECT_TRUE(db->Insert("Mark", Tuple({Value::Int(1)})).ok());
  EXPECT_EQ(db->Insert("Mark", Tuple({Value::Int(9)})).code(),
            StatusCode::kConstraintViolation);
  // Referenced side: always admissible (skip event).
  EXPECT_TRUE(db->Insert("Edge", Edge2(7, 8)).ok());
}

TEST(ConstraintEnforcement, SimplifiedAgreesWithFullRecheck) {
  // The same mutation sequence against two databases differing only in
  // constraints_simplify must produce identical verdicts and final states.
  DatabaseOptions simplified;
  simplified.constraints_simplify = true;
  DatabaseOptions full;
  full.constraints_simplify = false;
  std::unique_ptr<Database> a = GraphDb(simplified);
  std::unique_ptr<Database> b = GraphDb(full);
  for (Database* db : {a.get(), b.get()}) {
    ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
    ASSERT_TRUE(db->DefineConstraint(MarkRefsEdge()).ok());
  }
  const std::vector<Tuple> edges = {Edge2(1, 2), Edge2(2, 2), Edge2(2, 3),
                                    Edge2(4, 4), Edge2(3, 1)};
  for (const Tuple& t : edges) {
    Status sa = a->Insert("Edge", t);
    Status sb = b->Insert("Edge", t);
    EXPECT_EQ(sa.code(), sb.code()) << t.ToString();
  }
  for (int64_t node : {1, 5, 2, 9}) {
    Status sa = a->Insert("Mark", Tuple({Value::Int(node)}));
    Status sb = b->Insert("Mark", Tuple({Value::Int(node)}));
    EXPECT_EQ(sa.code(), sb.code()) << node;
  }
  EXPECT_EQ(SortedTuples(*a, "Edge"), SortedTuples(*b, "Edge"));
  EXPECT_EQ(SortedTuples(*a, "Mark"), SortedTuples(*b, "Mark"));
}

TEST(ConstraintEnforcement, CountersTrackCheckKinds) {
  // The counters are per-database, so a fresh database starts at zero.
  std::unique_ptr<Database> db = GraphDb();
  Counter* checks = db->metrics().GetCounter("constraints.checks");
  Counter* simplified = db->metrics().GetCounter("constraints.simplified");
  Counter* violations = db->metrics().GetCounter("constraints.violations");
  EXPECT_EQ(checks->value(), 0);
  EXPECT_EQ(simplified->value(), 0);
  EXPECT_EQ(violations->value(), 0);

  ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
  ASSERT_TRUE(db->Insert("Edge", Edge2(1, 2)).ok());
  EXPECT_EQ(db->Insert("Edge", Edge2(3, 3)).code(),
            StatusCode::kConstraintViolation);

  EXPECT_GT(checks->value(), 0);
  EXPECT_GT(simplified->value(), 0);
  EXPECT_EQ(violations->value(), 1);
}

TEST(ConstraintEnforcement, PragmaOffAdmitsThenFullRecheckSurfaces) {
  std::unique_ptr<Database> db = GraphDb();
  Interpreter interp(db.get());
  ASSERT_TRUE(interp
                  .Execute("CONSTRAINT c DENY EACH p IN Edge: "
                           "p.src = p.dst;")
                  .ok());
  ASSERT_TRUE(interp.Execute("PRAGMA CONSTRAINTS = OFF;").ok());
  // Violations are admitted while enforcement is off.
  ASSERT_TRUE(interp.Execute("INSERT INTO Edge <5, 5>;").ok());
  ASSERT_TRUE(interp.Execute("PRAGMA CONSTRAINTS = ON;").ok());
  // The next checked statement re-checks everything inserted since the
  // last successful check — the stale violation surfaces and the statement
  // is rejected, so its own (clean) tuple does not stick either.
  Status late = interp.Execute("INSERT INTO Edge <1, 2>;");
  EXPECT_EQ(late.code(), StatusCode::kConstraintViolation);
  std::vector<Tuple> edges = SortedTuples(*db, "Edge");
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], Edge2(5, 5));
}

TEST(ConstraintEnforcement, DescribeConstraintsListsPlans) {
  std::unique_ptr<Database> db = GraphDb();
  ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
  ASSERT_TRUE(db->DefineConstraint(MarkRefsEdge()).ok());
  std::string text = db->DescribeConstraints();
  EXPECT_NE(text.find("no_self_loop"), std::string::npos);
  EXPECT_NE(text.find("mark_refs_edge"), std::string::npos);
  EXPECT_NE(text.find("simplified"), std::string::npos);
  EXPECT_NE(text.find("skip"), std::string::npos);
  EXPECT_NE(text.find("full recheck"), std::string::npos);
}

TEST(ConstraintEnforcement, EraseForcesFullRecheckSoundly) {
  // A failed check rolls back by erasing, which invalidates the delta log;
  // the next check must fall back to full re-evaluation and still accept
  // clean tuples / reject violating ones.
  std::unique_ptr<Database> db = GraphDb();
  Counter* full_rechecks =
      db->metrics().GetCounter("constraints.full_rechecks");
  ASSERT_TRUE(db->DefineConstraint(NoSelfLoop()).ok());
  ASSERT_TRUE(db->Insert("Edge", Edge2(1, 2)).ok());
  EXPECT_EQ(db->Insert("Edge", Edge2(2, 2)).code(),
            StatusCode::kConstraintViolation);
  int64_t full0 = full_rechecks->value();
  // The rollback erased a tuple: InsertedSince is gone, so this check runs
  // the full denial — and passes.
  EXPECT_TRUE(db->Insert("Edge", Edge2(2, 3)).ok());
  EXPECT_GT(full_rechecks->value(), full0);
}

}  // namespace
}  // namespace datacon
