// Regression tests for the per-query observability layer: slow-query log
// feeding, profile retention across statements (the last_profile()
// clobbering fix), metrics histograms, and the pinned invariant that
// tracing never perturbs logical evaluation statistics.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ast/builder.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/database.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(SlowQueryLogFeed, EvaluationsAreRecordedWithDigest) {
  Database db;  // threshold defaults to 0: everything is admitted
  workload::EdgeList g = workload::RandomDigraph(16, 40, 3);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());

  Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::vector<SlowQueryLog::Entry> entries = db.slow_query_log().Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_NE(entries[0].statement.find("g_tc"), std::string::npos);
  EXPECT_GT(entries[0].elapsed_ns, 0);
  EXPECT_NE(entries[0].digest.find("inserted="), std::string::npos);
}

TEST(SlowQueryLogFeed, ZeroCapacityDisablesTheLog) {
  DatabaseOptions options;
  options.slow_query_log_capacity = 0;
  Database db(options);
  workload::EdgeList g = workload::RandomDigraph(16, 40, 3);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  EXPECT_TRUE(db.slow_query_log().Entries().empty());
}

TEST(SlowQueryLogFeed, ThresholdSuppressesFastQueries) {
  Database db;
  db.slow_query_log().set_threshold_ns(int64_t{3600} * 1'000'000'000);
  workload::EdgeList g = workload::RandomDigraph(16, 40, 3);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  // Nothing takes an hour; the log must stay empty.
  EXPECT_TRUE(db.slow_query_log().Entries().empty());
}

TEST(ProfileRetention, EarlierProfilesSurviveLaterStatements) {
  Database db;
  db.options().eval.profile = true;
  workload::EdgeList g = workload::RandomDigraph(16, 40, 3);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());

  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  int64_t first_index = db.last_eval_index();
  const ProfileNode* first = db.profile_at(first_index);
  ASSERT_NE(first, nullptr);
  std::string first_digest = first->CounterDigest();

  // Before the fix, the next evaluation clobbered the only retained
  // profile; the pointer obtained for statement i must stay valid and
  // unchanged while later statements run.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  }
  EXPECT_GT(db.last_eval_index(), first_index);
  ASSERT_EQ(db.profile_at(first_index), first);
  EXPECT_EQ(first->CounterDigest(), first_digest);
  // last_profile() tracks the most recent evaluation, not the first.
  EXPECT_EQ(db.last_profile(), db.profile_at(db.last_eval_index()));
  EXPECT_NE(db.last_profile(), nullptr);
}

TEST(ProfileRetention, EvictsBeyondTheRetentionBound) {
  Database db;
  db.options().eval.profile = true;
  workload::EdgeList g = workload::RandomDigraph(8, 16, 7);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());

  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  int64_t first_index = db.last_eval_index();
  for (size_t i = 0; i < Database::kRetainedProfiles; ++i) {
    ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  }
  EXPECT_EQ(db.profile_at(first_index), nullptr);
  EXPECT_NE(db.last_profile(), nullptr);
}

TEST(ProfileRetention, NoProfileRecordedWhenProfilingOff) {
  Database db;
  db.options().eval.profile = false;
  workload::EdgeList g = workload::RandomDigraph(8, 16, 7);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  EXPECT_EQ(db.last_profile(), nullptr);
}

TEST(MetricsFeed, QueryLatencyHistogramGrowsPerEvaluation) {
  // The registry is per-database, so a fresh database starts from zero —
  // no cross-test "count the delta" dance is needed anymore.
  Database db;
  Histogram* latency = db.metrics().GetHistogram("query.latency_ns");
  Histogram* rounds = db.metrics().GetHistogram("query.fixpoint_rounds");
  EXPECT_EQ(latency->count(), 0);
  EXPECT_EQ(rounds->count(), 0);

  workload::EdgeList g = workload::RandomDigraph(16, 40, 3);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());

  EXPECT_EQ(latency->count(), 2);
  EXPECT_EQ(rounds->count(), 2);
  EXPECT_GT(latency->Percentile(0.5), 0);
}

/// The scoping acceptance test: two databases evaluated concurrently from
/// separate threads report fully disjoint metrics — neither sees the
/// other's queries (run under TSan in check.sh).
TEST(MetricsFeed, ConcurrentDatabasesReportDisjointMetrics) {
  workload::EdgeList g = workload::RandomDigraph(24, 64, 5);
  constexpr int kQueriesA = 3;
  constexpr int kQueriesB = 5;
  Database a, b;
  ASSERT_TRUE(workload::SetupClosure(&a, "g", g).ok());
  ASSERT_TRUE(workload::SetupClosure(&b, "g", g).ok());

  auto run = [&g](Database* db, int queries) {
    for (int i = 0; i < queries; ++i) {
      ASSERT_TRUE(db->EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
    }
  };
  std::thread ta(run, &a, kQueriesA);
  std::thread tb(run, &b, kQueriesB);
  ta.join();
  tb.join();

  EXPECT_EQ(a.metrics().GetHistogram("query.latency_ns")->count(), kQueriesA);
  EXPECT_EQ(b.metrics().GetHistogram("query.latency_ns")->count(), kQueriesB);
  // Cache counters are scoped the same way (both ran the same workload, so
  // a's counts depend only on a's own queries).
  EXPECT_EQ(a.metrics().GetCounter("cache.misses")->value() +
                a.metrics().GetCounter("cache.hits")->value(),
            kQueriesA);
  EXPECT_EQ(b.metrics().GetCounter("cache.misses")->value() +
                b.metrics().GetCounter("cache.hits")->value(),
            kQueriesB);
}

/// Destruction retires a database's metrics into the process aggregator.
TEST(MetricsFeed, DestructionMergesIntoProcessMetrics) {
  int64_t before = ProcessMetrics().GetHistogram("query.latency_ns")->count();
  {
    Database db;
    workload::EdgeList g = workload::RandomDigraph(8, 16, 7);
    ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
    ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
    // Not merged yet while the database is alive.
    EXPECT_EQ(ProcessMetrics().GetHistogram("query.latency_ns")->count(),
              before);
  }
  EXPECT_EQ(ProcessMetrics().GetHistogram("query.latency_ns")->count(),
            before + 1);
}

/// The pinned invariant: with tracing ON, logical evaluation statistics
/// and results are bit-identical at 1 and 8 threads — instrumentation must
/// never feed logical counters or perturb the merge order.
TEST(TraceNeutrality, StatsBitIdenticalAcrossThreadCountsWithTracingOn) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.Enable(true);

  workload::EdgeList g = workload::RandomDigraph(48, 160, 11);
  EvalStats stats_1, stats_8;
  Relation result_1, result_8;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    Database db;
    ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
    db.options().eval.exec.num_threads = threads;
    Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (threads == 1) {
      stats_1 = db.last_stats();
      result_1 = *r;
    } else {
      stats_8 = db.last_stats();
      result_8 = *r;
    }
  }
  rec.Enable(false);
  EXPECT_GT(rec.EventCount(), 0u);  // tracing actually recorded
  rec.Clear();

  EXPECT_EQ(result_1.SortedTuples(), result_8.SortedTuples());
  EXPECT_EQ(stats_1.iterations, stats_8.iterations);
  EXPECT_EQ(stats_1.tuples_considered, stats_8.tuples_considered);
  EXPECT_EQ(stats_1.tuples_inserted, stats_8.tuples_inserted);
}

/// Tracing ON vs OFF must also leave the stats untouched.
TEST(TraceNeutrality, StatsIdenticalWithTracingOnAndOff) {
  workload::EdgeList g = workload::RandomDigraph(32, 96, 9);
  EvalStats stats_off, stats_on;
  TraceRecorder& rec = TraceRecorder::Global();
  for (bool trace : {false, true}) {
    rec.Clear();
    rec.Enable(trace);
    Database db;
    ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
    Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    (trace ? stats_on : stats_off) = db.last_stats();
  }
  rec.Enable(false);
  rec.Clear();
  EXPECT_EQ(stats_off.iterations, stats_on.iterations);
  EXPECT_EQ(stats_off.tuples_considered, stats_on.tuples_considered);
  EXPECT_EQ(stats_off.tuples_inserted, stats_on.tuples_inserted);
}

}  // namespace
}  // namespace datacon
