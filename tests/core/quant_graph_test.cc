#include "core/quant_graph.h"

#include <gtest/gtest.h>

#include "ast/builder.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

class QuantGraphTest : public ::testing::Test {
 protected:
  QuantGraphTest() {
    EXPECT_TRUE(catalog_
                    .DefineRelationType(
                        "infrontrel", Schema({{"front", ValueType::kString},
                                              {"back", ValueType::kString}}))
                    .ok());
    EXPECT_TRUE(catalog_
                    .DefineRelationType(
                        "aheadrel", Schema({{"head", ValueType::kString},
                                            {"tail", ValueType::kString}}))
                    .ok());
  }

  ConstructorDeclPtr AheadDecl() {
    auto body = Union(
        {IdentityBranch("r", Rel("Rel"), True()),
         MakeBranch({FieldRef("f", "front"), FieldRef("b", "tail")},
                    {Each("f", Rel("Rel")),
                     Each("b", Constructed(Rel("Rel"), "ahead"))},
                    Eq(FieldRef("f", "back"), FieldRef("b", "head")))});
    return std::make_shared<ConstructorDecl>(
        "ahead", FormalRelation{"Rel", "infrontrel"},
        std::vector<FormalRelation>{}, std::vector<FormalScalar>{},
        "aheadrel", body);
  }

  Catalog catalog_;
};

TEST_F(QuantGraphTest, Figure3Structure) {
  // Fig. 3: the head node, three variable nodes (r; f; b), attribute arcs
  // head->r, head->f (front=head... rendered as head = front), head->b
  // (tail = tail), a join arc f->b (back = head), and the recursive arc
  // b->head.
  QuantGraph g = BuildAugmentedQuantGraph(*AheadDecl(), catalog_);
  ASSERT_EQ(g.nodes.size(), 4u);
  EXPECT_EQ(g.nodes[0].kind, QuantGraph::Node::Kind::kHead);
  EXPECT_EQ(g.nodes[1].label, "EACH r IN Rel");
  EXPECT_EQ(g.nodes[2].label, "EACH f IN Rel");
  EXPECT_EQ(g.nodes[3].label, "EACH b IN Rel {ahead}");

  bool identity_arc = false, front_arc = false, tail_arc = false,
       join_arc = false, recursive_arc = false;
  for (const QuantGraph::Arc& a : g.arcs) {
    if (a.from == 0 && a.to == 1 && a.label == "=") identity_arc = true;
    if (a.from == 0 && a.to == 2 && a.label == "head = front") {
      front_arc = true;
    }
    if (a.from == 0 && a.to == 3 && a.label == "tail = tail") tail_arc = true;
    if (a.from == 2 && a.to == 3 && a.label == "back = head") join_arc = true;
    if (a.from == 3 && a.to == 0 && a.label == "recursive") {
      recursive_arc = true;
    }
  }
  EXPECT_TRUE(identity_arc);
  EXPECT_TRUE(front_arc);
  EXPECT_TRUE(tail_arc);
  EXPECT_TRUE(join_arc);
  EXPECT_TRUE(recursive_arc);
}

TEST_F(QuantGraphTest, ToDotRendersAllNodes) {
  QuantGraph g = BuildAugmentedQuantGraph(*AheadDecl(), catalog_);
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph quant"), std::string::npos);
  EXPECT_NE(dot.find("EACH b IN Rel {ahead}"), std::string::npos);
  EXPECT_NE(dot.find("recursive"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST_F(QuantGraphTest, CrossConstructorArcLabelled) {
  auto body = Union({IdentityBranch(
      "x", Constructed(Rel("Rel"), "other"), True())});
  auto decl = std::make_shared<ConstructorDecl>(
      "c", FormalRelation{"Rel", "infrontrel"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "infrontrel", body);
  QuantGraph g = BuildAugmentedQuantGraph(*decl, catalog_);
  bool uses_arc = false;
  for (const QuantGraph::Arc& a : g.arcs) {
    if (a.label == "uses other") uses_arc = true;
  }
  EXPECT_TRUE(uses_arc);
}

TEST_F(QuantGraphTest, PartitionsSplitIndependentGroups) {
  // Two independent constructor families must land in separate level-1
  // partitions (the compiler's preliminary decomposition, section 4).
  ASSERT_TRUE(catalog_
                  .DefineRelationType("numrel",
                                      Schema({{"n", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(catalog_.DefineConstructor(AheadDecl()).ok());
  auto num_body = Union({IdentityBranch("r", Rel("Rel"), True())});
  ASSERT_TRUE(catalog_
                  .DefineConstructor(std::make_shared<ConstructorDecl>(
                      "numid", FormalRelation{"Rel", "numrel"},
                      std::vector<FormalRelation>{},
                      std::vector<FormalScalar>{}, "numrel", num_body))
                  .ok());

  std::vector<std::vector<std::string>> parts = PartitionDefinitions(catalog_);
  ASSERT_EQ(parts.size(), 2u);
  // One partition holds ahead + its types; the other numid + numrel.
  bool found_ahead = false, found_numid = false;
  for (const auto& part : parts) {
    bool has_ahead = false, has_numid = false;
    for (const std::string& name : part) {
      if (name == "ahead") has_ahead = true;
      if (name == "numid") has_numid = true;
    }
    EXPECT_FALSE(has_ahead && has_numid);
    found_ahead |= has_ahead;
    found_numid |= has_numid;
  }
  EXPECT_TRUE(found_ahead);
  EXPECT_TRUE(found_numid);
}

TEST_F(QuantGraphTest, MutuallyRecursivePartitionIsOne) {
  ASSERT_TRUE(catalog_
                  .DefineRelationType("ontoprel",
                                      Schema({{"top", ValueType::kString},
                                              {"base", ValueType::kString}}))
                  .ok());
  ASSERT_TRUE(catalog_
                  .DefineRelationType("aboverel",
                                      Schema({{"high", ValueType::kString},
                                              {"low", ValueType::kString}}))
                  .ok());
  // m1 references m2 and vice versa — must fall into one partition.
  auto m1_body = Union({IdentityBranch(
      "x", Constructed(Rel("P"), "m2", {Rel("Rel")}), True())});
  ASSERT_TRUE(catalog_
                  .DefineConstructor(std::make_shared<ConstructorDecl>(
                      "m1", FormalRelation{"Rel", "infrontrel"},
                      std::vector<FormalRelation>{{"P", "infrontrel"}},
                      std::vector<FormalScalar>{}, "infrontrel", m1_body))
                  .ok());
  auto m2_body = Union({IdentityBranch(
      "x", Constructed(Rel("P"), "m1", {Rel("Rel")}), True())});
  ASSERT_TRUE(catalog_
                  .DefineConstructor(std::make_shared<ConstructorDecl>(
                      "m2", FormalRelation{"Rel", "infrontrel"},
                      std::vector<FormalRelation>{{"P", "infrontrel"}},
                      std::vector<FormalScalar>{}, "infrontrel", m2_body))
                  .ok());
  std::vector<std::vector<std::string>> parts = PartitionDefinitions(catalog_);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0][0], "m1");
  EXPECT_EQ(parts[0][1], "m2");
}

TEST(QuantGraphEmpty, NoConstructorsNoPartitions) {
  Catalog catalog;
  EXPECT_TRUE(PartitionDefinitions(catalog).empty());
}

}  // namespace
}  // namespace datacon
