#include "core/rewrite.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "ast/printer.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(RenameVars, RenamesEverywhere) {
  BranchPtr b = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Selected(Rel("E"), "s",
                                               {FieldRef("f", "src")}))},
      Some("q", Rel("E"), Eq(FieldRef("q", "src"), FieldRef("f", "dst"))));
  BranchPtr out = RenameVars(b, {{"f", "F1"}, {"q", "Q1"}});
  EXPECT_EQ(ToString(*out),
            "<F1.src, b.dst> OF EACH F1 IN E, EACH b IN E [s(F1.src)]: "
            "SOME Q1 IN E (Q1.src = F1.dst)");
}

class RewriteTest : public ::testing::Test {
 protected:
  RewriteTest() {
    EXPECT_TRUE(db_.DefineRelationType(
                       "edge", Schema({{"src", ValueType::kInt},
                                       {"dst", ValueType::kInt}}))
                    .ok());
    EXPECT_TRUE(db_.CreateRelation("E", "edge").ok());
    // ahead_2-style non-recursive constructor (the paper's first example).
    auto body = Union(
        {IdentityBranch("r", Rel("Rel"), True()),
         MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                    {Each("f", Rel("Rel")), Each("b", Rel("Rel"))},
                    Eq(FieldRef("f", "dst"), FieldRef("b", "src")))});
    EXPECT_TRUE(db_.DefineConstructor(std::make_shared<ConstructorDecl>(
                       "ahead_2", FormalRelation{"Rel", "edge"},
                       std::vector<FormalRelation>{},
                       std::vector<FormalScalar>{}, "edge", body))
                    .ok());
    // Recursive closure for seeded detection.
    auto tc_body = Union(
        {IdentityBranch("r", Rel("Rel"), True()),
         MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                    {Each("f", Rel("Rel")),
                     Each("b", Constructed(Rel("Rel"), "tc"))},
                    Eq(FieldRef("f", "dst"), FieldRef("b", "src")))});
    EXPECT_TRUE(db_.DefineConstructor(std::make_shared<ConstructorDecl>(
                       "tc", FormalRelation{"Rel", "edge"},
                       std::vector<FormalRelation>{},
                       std::vector<FormalScalar>{}, "edge", tc_body))
                    .ok());
  }

  Database db_;
};

TEST_F(RewriteTest, InlinesNonRecursiveApplication) {
  // {EACH v IN E{ahead_2}: v.src = 1} unfolds into two branches over E.
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "ahead_2"),
      Eq(FieldRef("v", "src"), Int(1)))});
  Result<std::optional<CalcExprPtr>> out =
      InlineNonRecursiveApplications(query, db_.catalog());
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out.value().has_value());
  const CalcExpr& rewritten = **out.value();
  ASSERT_EQ(rewritten.branches().size(), 2u);
  // No branch ranges over a constructed relation anymore.
  for (const BranchPtr& b : rewritten.branches()) {
    for (const Binding& binding : b->bindings()) {
      EXPECT_FALSE(binding.range->ContainsConstructor());
    }
    // Every branch got explicit targets.
    EXPECT_TRUE(b->targets().has_value());
  }
}

TEST_F(RewriteTest, InlinedQueryComputesSameResult) {
  ASSERT_TRUE(workload::LoadEdges(&db_, "E",
                                  workload::RandomDigraph(8, 14, 3))
                  .ok());
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "ahead_2"),
      Eq(FieldRef("v", "src"), Int(1)))});

  db_.options().inline_nonrecursive = false;
  Result<Relation> plain = db_.EvalQuery(query);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  db_.options().inline_nonrecursive = true;
  Result<Relation> inlined = db_.EvalQuery(query);
  ASSERT_TRUE(inlined.ok()) << inlined.status().ToString();
  EXPECT_TRUE(plain->SameTuples(*inlined));
}

TEST_F(RewriteTest, RecursiveApplicationIsLeftAlone) {
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "tc"), True())});
  Result<std::optional<CalcExprPtr>> out =
      InlineNonRecursiveApplications(query, db_.catalog());
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().has_value());
}

TEST_F(RewriteTest, PlainQueryIsLeftAlone) {
  CalcExprPtr query = Union({IdentityBranch("v", Rel("E"), True())});
  Result<std::optional<CalcExprPtr>> out =
      InlineNonRecursiveApplications(query, db_.catalog());
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().has_value());
}

TEST_F(RewriteTest, InlinePreservesOtherBindings) {
  // A join of a plain binding with a constructed one.
  CalcExprPtr query = Union({MakeBranch(
      {FieldRef("w", "src"), FieldRef("v", "dst")},
      {Each("w", Rel("E")), Each("v", Constructed(Rel("E"), "ahead_2"))},
      Eq(FieldRef("w", "dst"), FieldRef("v", "src")))});
  Result<std::optional<CalcExprPtr>> out =
      InlineNonRecursiveApplications(query, db_.catalog());
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out.value().has_value());
  for (const BranchPtr& b : (*out.value())->branches()) {
    // w's binding survives in every unfolded branch.
    EXPECT_EQ(b->bindings()[0].var, "w");
  }
}

TEST_F(RewriteTest, DetectSeededTcOnLiteral) {
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "tc"), Eq(FieldRef("v", "src"), Int(0)))});
  Result<std::optional<SeededTcPlan>> plan =
      DetectSeededTc(*query, db_.catalog());
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan.value().has_value());
  EXPECT_EQ(ToString(*plan.value()->edges_range), "E");
  ASSERT_TRUE(plan.value()->seed_literal.has_value());
  EXPECT_EQ(*plan.value()->seed_literal, Value::Int(0));
}

TEST_F(RewriteTest, DetectSeededTcOnParameter) {
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "tc"),
      Eq(Param("start"), FieldRef("v", "src")))});
  Result<std::optional<SeededTcPlan>> plan =
      DetectSeededTc(*query, db_.catalog());
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan.value().has_value());
  ASSERT_TRUE(plan.value()->seed_param.has_value());
  EXPECT_EQ(*plan.value()->seed_param, "start");
}

TEST_F(RewriteTest, NoSeededTcWithoutSourceBinding) {
  // Binding the *target* column does not trigger the forward-seeded plan.
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "tc"), Eq(FieldRef("v", "dst"), Int(0)))});
  Result<std::optional<SeededTcPlan>> plan =
      DetectSeededTc(*query, db_.catalog());
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().has_value());
}

TEST_F(RewriteTest, NoSeededTcForNonTcConstructor) {
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "ahead_2"),
      Eq(FieldRef("v", "src"), Int(0)))});
  // ahead_2 is non-recursive, so it is not a TC shape... but it is also
  // inlined earlier in the pipeline; Detect itself must not fire.
  Result<std::optional<SeededTcPlan>> plan =
      DetectSeededTc(*query, db_.catalog());
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().has_value());
}

TEST_F(RewriteTest, SeededTcWithResidualConjuncts) {
  ASSERT_TRUE(workload::LoadEdges(&db_, "E", workload::Chain(10)).ok());
  // v.src = 0 AND v.dst # 3 — the seed equality triggers the plan; the
  // residual conjunct filters afterwards.
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("E"), "tc"),
      And({Eq(FieldRef("v", "src"), Int(0)),
           Ne(FieldRef("v", "dst"), Int(3))}))});
  db_.options().use_capture_rules = true;
  Result<Relation> seeded = db_.EvalQuery(query);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  db_.options().use_capture_rules = false;
  Result<Relation> plain = db_.EvalQuery(query);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(seeded->SameTuples(*plain));
  EXPECT_EQ(seeded->size(), 8u);  // (0,1..9) minus (0,3)
}

}  // namespace
}  // namespace datacon
