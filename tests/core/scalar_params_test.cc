// Scalar parameters on constructors — the generalization of the selector
// parameter mechanism to constructors (section 4 discusses parameterized
// constructor definitions and the access paths they admit).

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

class ScalarParamTest : public ::testing::Test {
 protected:
  ScalarParamTest() {
    EXPECT_TRUE(workload::SetupClosure(&db_, "g", workload::Chain(8)).ok());
    // reach_from(Start) = the closure restricted, *during* construction,
    // to paths beginning at Start:
    //   BEGIN EACH r IN Rel: r.src = Start,
    //         <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel {tc}:
    //            f.src = Start AND f.dst = b.src
    // where tc is the unrestricted closure used for the extension step.
    auto body = Union(
        {IdentityBranch("r", Rel("Rel"),
                        Eq(FieldRef("r", "src"), Param("Start"))),
         MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                    {Each("f", Rel("Rel")),
                     Each("b", Constructed(Rel("Rel"), "g_tc"))},
                    And({Eq(FieldRef("f", "src"), Param("Start")),
                         Eq(FieldRef("f", "dst"), FieldRef("b", "src"))}))});
    auto decl = std::make_shared<ConstructorDecl>(
        "reach_from", FormalRelation{"Rel", "g_edgerel"},
        std::vector<FormalRelation>{},
        std::vector<FormalScalar>{{"Start", ValueType::kInt}}, "g_edgerel",
        body);
    EXPECT_TRUE(db_.DefineConstructor(decl).ok());
  }

  Database db_;
};

TEST_F(ScalarParamTest, LiteralArgumentThroughBuilderApi) {
  Result<Relation> r = db_.EvalRange(
      Constructed(Rel("g_E"), "reach_from", {}, {Int(2)}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 5u);  // (2,3)..(2,7)
  for (const Tuple& t : r->tuples()) {
    EXPECT_EQ(t.value(0).AsInt(), 2);
  }
}

TEST_F(ScalarParamTest, DistinctArgumentsAreDistinctApplications) {
  Result<Relation> from0 = db_.EvalRange(
      Constructed(Rel("g_E"), "reach_from", {}, {Int(0)}));
  Result<Relation> from5 = db_.EvalRange(
      Constructed(Rel("g_E"), "reach_from", {}, {Int(5)}));
  ASSERT_TRUE(from0.ok());
  ASSERT_TRUE(from5.ok());
  EXPECT_EQ(from0->size(), 7u);
  EXPECT_EQ(from5->size(), 2u);
}

TEST_F(ScalarParamTest, ArityAndTypeChecked) {
  EXPECT_FALSE(
      db_.EvalRange(Constructed(Rel("g_E"), "reach_from", {}, {})).ok());
  EXPECT_FALSE(db_.EvalRange(
                      Constructed(Rel("g_E"), "reach_from", {}, {Str("x")}))
                   .ok());
  EXPECT_FALSE(db_.EvalRange(Constructed(Rel("g_E"), "reach_from", {},
                                         {Int(1), Int(2)}))
                   .ok());
}

TEST_F(ScalarParamTest, ParameterPlaceholderThroughPreparedQuery) {
  // The scalar argument is itself a prepared-query placeholder: the
  // application instantiates with the placeholder and binds at Execute.
  CalcExprPtr form = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "reach_from", {}, {Param("p")}),
      True())});
  Result<PreparedQuery> prepared =
      db_.Prepare(form, {{"p", ValueType::kInt}});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  Result<Relation> from3 = prepared->Execute({{"p", Value::Int(3)}});
  ASSERT_TRUE(from3.ok()) << from3.status().ToString();
  EXPECT_EQ(from3->size(), 4u);
  Result<Relation> from6 = prepared->Execute({{"p", Value::Int(6)}});
  ASSERT_TRUE(from6.ok());
  EXPECT_EQ(from6->size(), 1u);
}

TEST_F(ScalarParamTest, SurfaceSyntaxRoundTrip) {
  // The printer renders scalar arguments; instantiation keys include them,
  // so applications with different constants never collide.
  RangePtr range = Constructed(Rel("g_E"), "reach_from", {}, {Int(4)});
  ApplicationGraph graph(&db_.catalog());
  Result<int> node = graph.AddRootRange(*range);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(graph.nodes()[static_cast<size_t>(node.value())].key,
            "g_E {reach_from(4)}");
}

}  // namespace
}  // namespace datacon
