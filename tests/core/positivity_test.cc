#include "core/positivity.h"

#include <gtest/gtest.h>

#include "ast/builder.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

ConstructorDeclPtr Ctor(PredPtr pred) {
  return std::make_shared<ConstructorDecl>(
      "c", FormalRelation{"Rel", "t"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "t",
      Union({IdentityBranch("r", Rel("Rel"), std::move(pred))}));
}

ConstructorDeclPtr CtorWithBranches(std::vector<BranchPtr> branches) {
  return std::make_shared<ConstructorDecl>(
      "c", FormalRelation{"Rel", "t"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "t", Union(std::move(branches)));
}

RangePtr Rec() { return Constructed(Rel("Rel"), "c"); }

TEST(Positivity, PlainBaseIsFine) {
  EXPECT_TRUE(CheckPositivity(*Ctor(True())).ok());
}

TEST(Positivity, RecursiveBindingAtParityZeroIsFine) {
  // The paper's `ahead`: EACH b IN Rel{ahead} as a binding.
  auto decl = CtorWithBranches(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("f", "a"), FieldRef("b", "b")},
                  {Each("f", Rel("Rel")), Each("b", Rec())},
                  Eq(FieldRef("f", "b"), FieldRef("b", "a")))});
  EXPECT_TRUE(CheckPositivity(*decl).ok());
}

TEST(Positivity, NonsenseIsRejected) {
  // Section 3.3: EACH r IN Rel: NOT (r IN Rel{nonsense}).
  PredPtr pred = Not(In({FieldRef("r", "a"), FieldRef("r", "b")}, Rec()));
  Status s = CheckPositivity(*Ctor(pred));
  EXPECT_EQ(s.code(), StatusCode::kPositivityViolation);
  EXPECT_NE(s.message().find("section 3.3"), std::string::npos);
}

TEST(Positivity, StrangeIsRejected) {
  // Section 3.3: NOT SOME s IN Rel{strange} (...) — the SOME range sits
  // under one NOT.
  PredPtr pred = Not(Some("s", Rec(),
                          Eq(FieldRef("r", "a"),
                             Add(FieldRef("s", "a"), Int(1)))));
  EXPECT_EQ(CheckPositivity(*Ctor(pred)).code(),
            StatusCode::kPositivityViolation);
}

TEST(Positivity, DoubleNegationIsEven) {
  PredPtr pred = Not(Not(In({FieldRef("r", "a"), FieldRef("r", "b")}, Rec())));
  EXPECT_TRUE(CheckPositivity(*Ctor(pred)).ok());
}

TEST(Positivity, AllRangeCountsAsOne) {
  // ALL x IN Rel{c} (...) — the range is under the ALL: odd, rejected.
  PredPtr pred = All("x", Rec(), True());
  EXPECT_EQ(CheckPositivity(*Ctor(pred)).code(),
            StatusCode::kPositivityViolation);
}

TEST(Positivity, AllBodyDoesNotCount) {
  // Names occurring only in the ALL's body predicate are NOT under the ALL
  // (the paper's exact definition): membership in Rel{c} inside the body at
  // parity 0 is fine.
  PredPtr pred = All("x", Rel("Rel"),
                     In({FieldRef("x", "a"), FieldRef("x", "b")}, Rec()));
  EXPECT_TRUE(CheckPositivity(*Ctor(pred)).ok());
}

TEST(Positivity, NotOverAllRangeIsEven) {
  // NOT (ALL x IN Rel{c} (...)): 1 NOT + 1 ALL = even — accepted, exactly
  // as the NOT-ALL = SOME-NOT equivalence suggests.
  PredPtr pred = Not(All("x", Rec(), True()));
  EXPECT_TRUE(CheckPositivity(*Ctor(pred)).ok());
}

TEST(Positivity, SomeRangeAtParityZeroIsFine) {
  PredPtr pred = Some("x", Rec(), True());
  EXPECT_TRUE(CheckPositivity(*Ctor(pred)).ok());
}

TEST(Positivity, NotOverSomeRangeIsOdd) {
  PredPtr pred = Not(Some("x", Rec(), True()));
  EXPECT_EQ(CheckPositivity(*Ctor(pred)).code(),
            StatusCode::kPositivityViolation);
}

TEST(Positivity, NestedAllInsideNotInsideAll) {
  // ALL x IN Rel ( NOT ( SOME y IN Rel{c} (...) ) ): the SOME range is
  // under 1 NOT (the enclosing ALL binds only its own range) — odd.
  PredPtr pred = All("x", Rel("Rel"), Not(Some("y", Rec(), True())));
  EXPECT_EQ(CheckPositivity(*Ctor(pred)).code(),
            StatusCode::kPositivityViolation);
}

TEST(Positivity, NonRecursiveRangesIgnoreParity) {
  // NOT over plain relations is unrestricted.
  PredPtr pred = Not(Some("x", Rel("Other"), True()));
  EXPECT_TRUE(CheckPositivity(*Ctor(pred)).ok());
}

TEST(Positivity, ConstructorInsideArgumentCounts) {
  // A range whose *argument* contains a constructor is still a constructed
  // occurrence.
  RangePtr nested = Constructed(Rel("Other"), "d", {Rec()});
  PredPtr pred = Not(Some("x", nested, True()));
  EXPECT_EQ(CheckPositivity(*Ctor(pred)).code(),
            StatusCode::kPositivityViolation);
}

TEST(Positivity, DisjunctionPreservesParity) {
  PredPtr fine = Or({In({FieldRef("r", "a"), FieldRef("r", "b")}, Rec()),
                     Eq(FieldRef("r", "a"), FieldRef("r", "b"))});
  EXPECT_TRUE(CheckPositivity(*Ctor(fine)).ok());
  PredPtr bad = Or({Not(In({FieldRef("r", "a"), FieldRef("r", "b")}, Rec())),
                    Eq(FieldRef("r", "a"), FieldRef("r", "b"))});
  EXPECT_FALSE(CheckPositivity(*Ctor(bad)).ok());
}

TEST(Positivity, ExprLevelCheck) {
  CalcExprPtr good = Union({IdentityBranch("r", Rec(), True())});
  EXPECT_TRUE(CheckPositivity(*good).ok());
  CalcExprPtr bad = Union(
      {IdentityBranch("r", Rel("Rel"), Not(Some("x", Rec(), True())))});
  EXPECT_FALSE(CheckPositivity(*bad).ok());
}

TEST(ForEachRangeWithParity, ReportsBindingsAtZero) {
  BranchPtr b = MakeBranch({FieldRef("f", "a")},
                           {Each("f", Rel("A")), Each("g", Rel("B"))}, True());
  int count = 0;
  ForEachRangeWithParity(*b, [&](const Range&, int parity) {
    EXPECT_EQ(parity, 0);
    ++count;
  });
  EXPECT_EQ(count, 2);
}

TEST(ForEachRangeWithParity, AccumulatesNesting) {
  // NOT ( SOME x IN A ( NOT ( ALL y IN B (TRUE) ) ) ):
  //   A at parity 1, B at parity 1 (NOT) + 1 (NOT) + 1 (ALL) = 3.
  PredPtr pred = Not(Some("x", Rel("A"), Not(All("y", Rel("B"), True()))));
  std::map<std::string, int> parities;
  ForEachRangeWithParity(*pred, 0, [&](const Range& r, int parity) {
    parities[r.relation()] = parity;
  });
  EXPECT_EQ(parities["A"], 1);
  EXPECT_EQ(parities["B"], 3);
}

}  // namespace
}  // namespace datacon
