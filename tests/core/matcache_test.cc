#include "core/matcache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "storage/relation.h"
#include "types/value.h"

namespace datacon {
namespace {

Schema EdgeSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
}

Tuple Edge(int a, int b) { return Tuple({Value::Int(a), Value::Int(b)}); }

/// A catalog with one relation "e" of two int attributes, pre-loaded with
/// the given edges — the stand-in for a component's single base input.
class MatCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.DefineRelationType("edges", EdgeSchema()).ok());
    ASSERT_TRUE(catalog_.CreateRelation("e", "edges").ok());
    e_ = catalog_.LookupRelation("e").value();
    ASSERT_TRUE(e_->Insert(Edge(1, 2)).ok());
    ASSERT_TRUE(e_->Insert(Edge(2, 3)).ok());
  }

  /// A one-member entry keyed on "tc" whose input pins "e" at its current
  /// generation.
  void StoreEntry(MatCache* cache, bool maintainable,
                  EvalStats stats = EvalStats{}) {
    auto rel = std::make_shared<Relation>(EdgeSchema());
    ASSERT_TRUE(rel->Insert(Edge(1, 3)).ok());
    cache->Insert("tc", {CachedRelation{"tc-node", std::move(rel)}},
                  {CacheInput{"e", e_->generation()}}, stats, maintainable);
  }

  Catalog catalog_;
  Relation* e_ = nullptr;
};

TEST_F(MatCacheTest, MissThenHitReplaysMembersAndStats) {
  MatCache cache(4);
  EXPECT_EQ(cache.Lookup("tc", catalog_).outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.stats().misses, 1);

  EvalStats stats;
  stats.iterations = 3;
  stats.tuples_inserted = 7;
  StoreEntry(&cache, /*maintainable=*/true, stats);

  CacheLookup found = cache.Lookup("tc", catalog_);
  ASSERT_EQ(found.outcome, CacheOutcome::kHit);
  ASSERT_EQ(found.members.size(), 1u);
  EXPECT_EQ(found.members[0].node_key, "tc-node");
  EXPECT_TRUE(found.members[0].relation->Contains(Edge(1, 3)));
  EXPECT_EQ(found.stats.iterations, 3u);
  EXPECT_EQ(found.stats.tuples_inserted, 7u);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(MatCacheTest, InsertOnlyChurnIsADeltaHitSettledByNoteMaintained) {
  MatCache cache(4);
  StoreEntry(&cache, /*maintainable=*/true);
  ASSERT_TRUE(e_->Insert(Edge(3, 4)).ok());

  CacheLookup found = cache.Lookup("tc", catalog_);
  ASSERT_EQ(found.outcome, CacheOutcome::kDeltaHit);
  ASSERT_EQ(found.deltas.size(), 1u);
  EXPECT_EQ(found.deltas[0].relation, "e");
  ASSERT_EQ(found.deltas[0].inserted.size(), 1u);
  EXPECT_EQ(found.deltas[0].inserted[0], Edge(3, 4));
  // A delta hit is counted only once the caller settles it.
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().delta_maintained, 0);

  auto refreshed = std::make_shared<Relation>(EdgeSchema());
  ASSERT_TRUE(refreshed->Insert(Edge(1, 4)).ok());
  cache.NoteMaintained("tc", {CachedRelation{"tc-node", refreshed}},
                       {CacheInput{"e", e_->generation()}}, EvalStats{});
  EXPECT_EQ(cache.stats().delta_maintained, 1);

  // The refreshed entry is a plain hit at the new generation.
  CacheLookup again = cache.Lookup("tc", catalog_);
  ASSERT_EQ(again.outcome, CacheOutcome::kHit);
  EXPECT_TRUE(again.members[0].relation->Contains(Edge(1, 4)));
}

TEST_F(MatCacheTest, EraseChurnInvalidatesAndCountsTheMiss) {
  MatCache cache(4);
  StoreEntry(&cache, /*maintainable=*/true);
  ASSERT_TRUE(e_->Erase(Edge(1, 2)));

  EXPECT_EQ(cache.Lookup("tc", catalog_).outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(MatCacheTest, NonMaintainableEntryInvalidatesOnInsertChurn) {
  // Insert-only churn on a maintainable entry is a delta hit; on a
  // non-maintainable one (negated inputs, capture closures) it must
  // invalidate instead.
  MatCache cache(4);
  StoreEntry(&cache, /*maintainable=*/false);
  ASSERT_TRUE(e_->Insert(Edge(3, 4)).ok());

  EXPECT_EQ(cache.Lookup("tc", catalog_).outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(MatCacheTest, DroppedInputRelationInvalidates) {
  MatCache cache(4);
  auto rel = std::make_shared<Relation>(EdgeSchema());
  cache.Insert("ghost", {CachedRelation{"ghost-node", std::move(rel)}},
               {CacheInput{"no_such_relation", 1}}, EvalStats{},
               /*maintainable=*/true);
  EXPECT_EQ(cache.Lookup("ghost", catalog_).outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST_F(MatCacheTest, InvalidateAfterFailureCountsInvalidationAndMiss) {
  MatCache cache(4);
  StoreEntry(&cache, /*maintainable=*/true);
  ASSERT_TRUE(e_->Insert(Edge(3, 4)).ok());
  ASSERT_EQ(cache.Lookup("tc", catalog_).outcome, CacheOutcome::kDeltaHit);

  cache.InvalidateAfterFailure("tc");
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().delta_maintained, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(MatCacheTest, LruEvictsTheLeastRecentlyUsedEntry) {
  MatCache cache(2);
  auto member = [this](int x) {
    auto rel = std::make_shared<Relation>(EdgeSchema());
    EXPECT_TRUE(rel->Insert(Edge(x, x)).ok());
    return rel;
  };
  std::vector<CacheInput> inputs = {CacheInput{"e", e_->generation()}};
  cache.Insert("a", {CachedRelation{"a", member(1)}}, inputs, EvalStats{},
               false);
  cache.Insert("b", {CachedRelation{"b", member(2)}}, inputs, EvalStats{},
               false);
  // Touch "a" so "b" is the LRU entry when "c" arrives.
  ASSERT_EQ(cache.Lookup("a", catalog_).outcome, CacheOutcome::kHit);
  cache.Insert("c", {CachedRelation{"c", member(3)}}, inputs, EvalStats{},
               false);

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.Lookup("b", catalog_).outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.Lookup("a", catalog_).outcome, CacheOutcome::kHit);
  EXPECT_EQ(cache.Lookup("c", catalog_).outcome, CacheOutcome::kHit);
}

TEST_F(MatCacheTest, SetCapacityShrinksImmediatelyInLruOrder) {
  MatCache cache(3);
  std::vector<CacheInput> inputs = {CacheInput{"e", e_->generation()}};
  auto rel = std::make_shared<Relation>(EdgeSchema());
  cache.Insert("a", {CachedRelation{"a", rel}}, inputs, EvalStats{}, false);
  cache.Insert("b", {CachedRelation{"b", rel}}, inputs, EvalStats{}, false);
  cache.Insert("c", {CachedRelation{"c", rel}}, inputs, EvalStats{}, false);
  ASSERT_EQ(cache.size(), 3u);

  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.capacity(), 1u);
  // "c" was inserted last, so it is the survivor.
  EXPECT_EQ(cache.Lookup("c", catalog_).outcome, CacheOutcome::kHit);
}

TEST_F(MatCacheTest, CapacityZeroStoresNothing) {
  MatCache cache(0);
  StoreEntry(&cache, /*maintainable=*/true);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("tc", catalog_).outcome, CacheOutcome::kMiss);
}

TEST_F(MatCacheTest, ClearDropsEntriesKeepsCounters) {
  MatCache cache(4);
  StoreEntry(&cache, /*maintainable=*/true);
  ASSERT_EQ(cache.Lookup("tc", catalog_).outcome, CacheOutcome::kHit);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.Lookup("tc", catalog_).outcome, CacheOutcome::kMiss);
}

TEST_F(MatCacheTest, SnapshotCacheInputsPinsCurrentGenerations) {
  Result<std::vector<CacheInput>> snap =
      SnapshotCacheInputs({"e"}, catalog_);
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap.value().size(), 1u);
  EXPECT_EQ(snap.value()[0].relation, "e");
  EXPECT_EQ(snap.value()[0].generation, e_->generation());

  EXPECT_FALSE(SnapshotCacheInputs({"e", "missing"}, catalog_).ok());
}

}  // namespace
}  // namespace datacon
