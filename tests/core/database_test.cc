#include "core/database.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests
using testing::ReferenceClosure;
using testing::ToPairSet;

TEST(Database, DefinitionErrors) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "t", Schema({{"x", ValueType::kInt}}))
                  .ok());
  EXPECT_EQ(db.DefineRelationType("t", Schema({{"x", ValueType::kInt}}))
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CreateRelation("R", "nosuch").code(), StatusCode::kNotFound);
  ASSERT_TRUE(db.CreateRelation("R", "t").ok());
  EXPECT_EQ(db.CreateRelation("R", "t").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db.Insert("S", Tuple({Value::Int(1)})).code(),
            StatusCode::kNotFound);
}

TEST(Database, FailedConstructorGroupRollsBack) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  auto good = std::make_shared<ConstructorDecl>(
      "good", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "edge",
      Union({IdentityBranch("r", Rel("Rel"), True())}));
  auto bad = std::make_shared<ConstructorDecl>(
      "bad", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "nosuchtype",
      Union({IdentityBranch("r", Rel("Rel"), True())}));
  EXPECT_FALSE(db.DefineConstructorGroup({good, bad}).ok());
  // Neither name survives the rollback.
  EXPECT_FALSE(db.catalog().LookupConstructor("good").ok());
  EXPECT_FALSE(db.catalog().LookupConstructor("bad").ok());
  // The good one can be re-defined alone.
  EXPECT_TRUE(db.DefineConstructor(good).ok());
}

TEST(Database, AssignEnforcesKey) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "keyed", Schema({{"part", ValueType::kString},
                                     {"w", ValueType::kInt}},
                                    {0}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("Objects", "keyed").ok());
  ASSERT_TRUE(
      db.Insert("Objects", Tuple({Value::String("old"), Value::Int(0)})).ok());

  Relation value(Schema({{"part", ValueType::kString}, {"w", ValueType::kInt}}));
  ASSERT_TRUE(value.Insert(Tuple({Value::String("a"), Value::Int(1)})).ok());
  ASSERT_TRUE(value.Insert(Tuple({Value::String("a"), Value::Int(2)})).ok());
  // The assignment target's key rejects the pair; the old value survives.
  EXPECT_EQ(db.Assign("Objects", value).code(), StatusCode::kKeyViolation);
  EXPECT_EQ(db.GetRelation("Objects").value()->size(), 1u);
  EXPECT_TRUE(db.GetRelation("Objects")
                  .value()
                  ->Contains(Tuple({Value::String("old"), Value::Int(0)})));

  Relation fine(Schema({{"part", ValueType::kString}, {"w", ValueType::kInt}}));
  ASSERT_TRUE(fine.Insert(Tuple({Value::String("b"), Value::Int(1)})).ok());
  EXPECT_TRUE(db.Assign("Objects", fine).ok());
  EXPECT_EQ(db.GetRelation("Objects").value()->size(), 1u);
}

TEST(Database, EvalRangePlainAndSelected) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  Result<Relation> plain = db.EvalRange(Rel("g_E"));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->size(), 3u);

  auto sel = std::make_shared<SelectorDecl>(
      "from", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalScalar>{{"n", ValueType::kInt}}, "r",
      Eq(FieldRef("r", "src"), Param("n")));
  ASSERT_TRUE(db.DefineSelector(sel).ok());
  Result<Relation> selected =
      db.EvalRange(Selected(Rel("g_E"), "from", {Int(1)}));
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 1u);
}

class CaptureEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CaptureEquivalenceTest, CaptureOnAndOffAgree) {
  workload::EdgeList g =
      workload::RandomDigraph(12, 26, static_cast<uint64_t>(GetParam()));
  std::set<std::pair<int, int>> expected = ReferenceClosure(g);
  for (bool capture : {false, true}) {
    DatabaseOptions options;
    options.use_capture_rules = capture;
    Database db(options);
    ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
    Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(ToPairSet(*r), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaptureEquivalenceTest,
                         ::testing::Range(0, 6));

TEST(Database, PreparedQuerySeededExecution) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(12)).ok());
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("v", "src"), Param("start")))});
  Result<PreparedQuery> prepared =
      db.Prepare(query, {{"start", ValueType::kInt}});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_NE(prepared->plan_description().find("seeded transitive closure"),
            std::string::npos);

  Result<Relation> from0 = prepared->Execute({{"start", Value::Int(0)}});
  ASSERT_TRUE(from0.ok()) << from0.status().ToString();
  EXPECT_EQ(from0->size(), 11u);

  Result<Relation> from8 = prepared->Execute({{"start", Value::Int(8)}});
  ASSERT_TRUE(from8.ok());
  EXPECT_EQ(from8->size(), 3u);
}

TEST(Database, PreparedQueryParameterValidation) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("v", "src"), Param("start")))});
  Result<PreparedQuery> prepared =
      db.Prepare(query, {{"start", ValueType::kInt}});
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->Execute({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(prepared->Execute({{"start", Value::String("x")}})
                .status()
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(prepared
                ->Execute({{"start", Value::Int(0)},
                           {"extra", Value::Int(1)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Database, PreparedQueryGeneralFallback) {
  // A query over the full closure (no source binding) prepares to the
  // general plan and still executes correctly.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(5)).ok());
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("g_E"), "g_tc"), True())});
  Result<PreparedQuery> prepared = db.Prepare(query, {});
  ASSERT_TRUE(prepared.ok());
  Result<Relation> all = prepared->Execute({});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
}

TEST(Database, SeededQueryWithLiteralUsesCapturePath) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(64)).ok());
  CalcExprPtr query = Union({IdentityBranch(
      "v", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("v", "src"), Int(60)))});
  Result<Relation> r = db.EvalQuery(query);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  // The seeded path never materializes the full closure: it considers only
  // tuples reachable from the seed.
  EXPECT_LE(db.last_stats().tuples_considered, 10u);
}

TEST(Database, ExplainReportsStrategyAndPartitions) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  Result<std::string> text = db.Explain(Constructed(Rel("g_E"), "g_tc"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("level 1"), std::string::npos);
  EXPECT_NE(text->find("g_E {g_tc}"), std::string::npos);
  EXPECT_NE(text->find("capture rule"), std::string::npos);

  db.options().use_capture_rules = false;
  text = db.Explain(Constructed(Rel("g_E"), "g_tc"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("semi-naive fixpoint"), std::string::npos);
}

TEST(Database, ExplainPlainRange) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(3)).ok());
  Result<std::string> text = db.Explain(Rel("g_E"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("plain range"), std::string::npos);
}

TEST(Database, StratifiedNegationExtension) {
  // NOT over a *different* (lower-stratum) constructed relation: rejected
  // by strict DBPL, accepted by the stratified extension.
  auto build_db = [](bool stratified) {
    DatabaseOptions options;
    options.allow_stratified_negation = stratified;
    auto db = std::make_unique<Database>(options);
    EXPECT_TRUE(workload::SetupClosure(db.get(), "g",
                                       workload::Chain(5))
                    .ok());
    // unreachable = {<f.src, b.dst> | f, b in E, NOT <f.src, b.dst> in
    // E{g_tc}} — pairs NOT connected.
    auto body = Union({MakeBranch(
        {FieldRef("f", "src"), FieldRef("b", "dst")},
        {Each("f", Rel("Rel")), Each("b", Rel("Rel"))},
        Not(In({FieldRef("f", "src"), FieldRef("b", "dst")},
               Constructed(Rel("Rel"), "g_tc"))))});
    auto decl = std::make_shared<ConstructorDecl>(
        "unreachable", FormalRelation{"Rel", "g_edgerel"},
        std::vector<FormalRelation>{}, std::vector<FormalScalar>{},
        "g_edgerel", body);
    return std::make_pair(std::move(db), decl);
  };

  {
    auto [db, decl] = build_db(false);
    EXPECT_EQ(db->DefineConstructor(decl).code(),
              StatusCode::kPositivityViolation);
  }
  {
    auto [db, decl] = build_db(true);
    ASSERT_TRUE(db->DefineConstructor(decl).ok());
    Result<Relation> r =
        db->EvalRange(Constructed(Rel("g_E"), "unreachable"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Pairs (f.src, b.dst) over chain edges f,b with src not connected to
    // dst. f.src in {0..3}, b.dst in {1..4}; connected iff src < dst.
    for (const Tuple& t : r->tuples()) {
      EXPECT_GE(t.value(0).AsInt(), t.value(1).AsInt());
    }
    EXPECT_FALSE(r->empty());
  }
}

TEST(Database, StratifiedExtensionStillRejectsRecursiveNegation) {
  DatabaseOptions options;
  options.allow_stratified_negation = true;
  Database db(options);
  ASSERT_TRUE(db.DefineRelationType(
                    "t", Schema({{"x", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("R", "t").ok());
  ASSERT_TRUE(db.Insert("R", Tuple({Value::Int(1)})).ok());
  // nonsense-style self-negation: definition is accepted (no strict
  // check), but query compilation detects the unstratifiable cycle.
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"),
      Not(In({FieldRef("r", "x")}, Constructed(Rel("Rel"), "selfneg"))))});
  auto decl = std::make_shared<ConstructorDecl>(
      "selfneg", FormalRelation{"Rel", "t"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "t", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());
  Result<Relation> r = db.EvalRange(Constructed(Rel("R"), "selfneg"));
  EXPECT_EQ(r.status().code(), StatusCode::kPositivityViolation);
}

TEST(Database, EvalQueryAsChecksSchema) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(3)).ok());
  CalcExprPtr query = Union({IdentityBranch("v", Rel("g_E"), True())});
  Schema wrong({{"x", ValueType::kString}});
  EXPECT_FALSE(db.EvalQueryAs(query, wrong).ok());
  Schema right({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  EXPECT_TRUE(db.EvalQueryAs(query, right).ok());
}

TEST(Database, LastStatsPopulated) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(6)).ok());
  db.options().use_capture_rules = false;
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  EXPECT_GT(db.last_stats().iterations, 0u);
  EXPECT_GT(db.last_stats().tuples_considered, 0u);
}

}  // namespace
}  // namespace datacon
