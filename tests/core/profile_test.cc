#include <gtest/gtest.h>

#include <memory>

#include "ast/builder.h"
#include "core/database.h"
#include "core/fixpoint.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

/// Materializes `range` through a raw SystemEvaluator (no capture rules)
/// and returns the profile tree.
Result<std::unique_ptr<ProfileNode>> ProfileRaw(Database* db,
                                                const RangePtr& range,
                                                EvalOptions options) {
  options.profile = true;
  ApplicationGraph graph(&db->catalog());
  DATACON_ASSIGN_OR_RETURN(int root, graph.AddRootRange(*range));
  (void)root;
  SystemEvaluator ev(&db->catalog(), &graph, options);
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());
  DATACON_ASSIGN_OR_RETURN(const Relation* rel, ev.Resolve(*range));
  (void)rel;
  return ev.TakeProfile();
}

TEST(Profile, OffByDefault) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  ApplicationGraph graph(&db.catalog());
  ASSERT_TRUE(graph.AddRootRange(*Constructed(Rel("g_E"), "g_tc")).ok());
  SystemEvaluator ev(&db.catalog(), &graph, EvalOptions{});
  ASSERT_TRUE(ev.MaterializeAll().ok());
  EXPECT_EQ(ev.profile(), nullptr);
  EXPECT_EQ(ev.TakeProfile(), nullptr);
}

TEST(Profile, SemiNaiveComponentRecordsRoundsAndDeltas) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());

  EvalOptions options;
  options.strategy = FixpointStrategy::kSemiNaive;
  Result<std::unique_ptr<ProfileNode>> profile =
      ProfileRaw(&db, Constructed(Rel("g_E"), "g_tc"), options);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ProfileNode* root = profile->get();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name(), "evaluation");
  EXPECT_GE(root->elapsed_ns(), 0);

  const ProfileNode* comp =
      root->Find("component [g_E {g_tc}] (semi-naive)");
  ASSERT_NE(comp, nullptr) << root->ToText();
  // Chain(4) closure: deltas 3, 2, 1, 0 over four rounds.
  EXPECT_EQ(comp->counters().Get("rounds"), 4);
  ASSERT_EQ(comp->children().size(), 4u);
  EXPECT_EQ(comp->children()[0]->name(), "round 1 (seed)");
  EXPECT_EQ(comp->children()[0]->counters().Get("delta[g_E {g_tc}]"), 3);
  EXPECT_EQ(comp->children()[1]->counters().Get("delta[g_E {g_tc}]"), 2);
  EXPECT_EQ(comp->children()[2]->counters().Get("delta[g_E {g_tc}]"), 1);
  EXPECT_EQ(comp->children()[3]->counters().Get("delta[g_E {g_tc}]"), 0);
  for (const auto& round : comp->children()) {
    EXPECT_GE(round->elapsed_ns(), 0) << round->name();
  }
}

TEST(Profile, NaiveComponentRecordsPerRoundTotals) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());

  EvalOptions options;
  options.strategy = FixpointStrategy::kNaive;
  Result<std::unique_ptr<ProfileNode>> profile =
      ProfileRaw(&db, Constructed(Rel("g_E"), "g_tc"), options);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  const ProfileNode* comp =
      profile->get()->Find("component [g_E {g_tc}] (naive)");
  ASSERT_NE(comp, nullptr) << profile->get()->ToText();
  EXPECT_GE(comp->counters().Get("rounds"), 3);
  ASSERT_FALSE(comp->children().empty());
  // The final round's total is the full closure of Chain(4): 6 tuples.
  EXPECT_EQ(comp->children().back()->counters().Get("total[g_E {g_tc}]"), 6);
}

TEST(Profile, CounterDigestIdenticalAcrossThreadCounts) {
  // The determinism contract of the PR: every logical counter in the
  // profile tree is bit-identical whatever PRAGMA THREADS says. Only wall
  // times and ~exec counters (excluded from the digest) may differ.
  workload::EdgeList g = workload::RandomDigraph(48, 160, 11);
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());

  for (FixpointStrategy strategy :
       {FixpointStrategy::kNaive, FixpointStrategy::kSemiNaive}) {
    EvalOptions serial;
    serial.strategy = strategy;
    serial.exec.num_threads = 1;
    EvalOptions parallel = serial;
    parallel.exec.num_threads = 8;

    Result<std::unique_ptr<ProfileNode>> a =
        ProfileRaw(&db, Constructed(Rel("g_E"), "g_tc"), serial);
    Result<std::unique_ptr<ProfileNode>> b =
        ProfileRaw(&db, Constructed(Rel("g_E"), "g_tc"), parallel);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ((*a)->CounterDigest(), (*b)->CounterDigest())
        << "strategy=" << static_cast<int>(strategy);
  }
}

TEST(Profile, DatabaseExposesLastProfile) {
  // Cache off: the materialization cache would otherwise serve the second
  // evaluation as a capture cache hit, and this test pins the profile of
  // the materialization itself.
  DatabaseOptions options;
  options.cache = false;
  Database db(options);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());

  // Profiling off: no tree retained.
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  EXPECT_EQ(db.last_profile(), nullptr);

  db.options().eval.profile = true;
  Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(db.last_profile(), nullptr);
  EXPECT_EQ(db.last_profile()->name(), "evaluation");
  // The linear closure goes through the capture rule, which reports its
  // own profile node.
  const ProfileNode* capture =
      db.last_profile()->Find("capture [g_E {g_tc}] (transitive closure)");
  ASSERT_NE(capture, nullptr) << db.last_profile()->ToText();
  EXPECT_EQ(capture->counters().Get("edge_tuples"), 3);
  EXPECT_EQ(capture->counters().Get("closure_tuples"), 6);

  // Turning profiling back off clears the retained tree on the next query.
  db.options().eval.profile = false;
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  EXPECT_EQ(db.last_profile(), nullptr);
}

TEST(Profile, BranchCountersFlowIntoRounds) {
  // A non-linear (doubly recursive) constructor avoids the capture rule
  // and the semi-naive differential rewrite, so every round reports index
  // builds and probes from the generic branch executor.
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  ASSERT_TRUE(workload::LoadEdges(&db, "E", workload::Chain(4)).ok());

  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("x", "src"), FieldRef("y", "dst")},
                  {Each("x", Constructed(Rel("Rel"), "tc2")),
                   Each("y", Constructed(Rel("Rel"), "tc2"))},
                  Eq(FieldRef("x", "dst"), FieldRef("y", "src")))});
  auto decl = std::make_shared<ConstructorDecl>(
      "tc2", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "edge", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());

  EvalOptions options;
  options.strategy = FixpointStrategy::kSemiNaive;
  Result<std::unique_ptr<ProfileNode>> profile =
      ProfileRaw(&db, Constructed(Rel("E"), "tc2"), options);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  const ProfileNode* comp =
      profile->get()->Find("component [E {tc2}] (semi-naive)");
  ASSERT_NE(comp, nullptr) << profile->get()->ToText();
  ASSERT_GE(comp->children().size(), 2u);
  const ProfileNode& round2 = *comp->children()[1];
  EXPECT_GT(round2.counters().Get("index_builds"), 0) << comp->ToText();
  EXPECT_GT(round2.counters().Get("index_probes"), 0) << comp->ToText();
  EXPECT_GT(round2.counters().Get("outer_scans"), 0) << comp->ToText();
}

}  // namespace
}  // namespace datacon
