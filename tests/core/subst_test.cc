#include "core/subst.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "ast/printer.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(Subst, ScalarParamBecomesLiteral) {
  Substitution subst;
  subst.scalars["Obj"] = Str("table");
  TermPtr t = SubstituteTerm(Param("Obj"), subst);
  EXPECT_EQ(ToString(*t), "\"table\"");
}

TEST(Subst, UnmappedParamSurvives) {
  Substitution subst;
  TermPtr original = Param("p");
  EXPECT_EQ(SubstituteTerm(original, subst), original);
}

TEST(Subst, ArithRecurses) {
  Substitution subst;
  subst.scalars["n"] = Int(5);
  TermPtr t = SubstituteTerm(Add(Param("n"), Int(1)), subst);
  EXPECT_EQ(ToString(*t), "(5 + 1)");
}

TEST(Subst, RangeBaseReplacedAndSpliced) {
  // Rel {ahead} with Rel -> Infront [sel] gives Infront [sel] {ahead}.
  Substitution subst;
  subst.relations["Rel"] = Selected(Rel("Infront"), "sel");
  RangePtr r = SubstituteRange(Constructed(Rel("Rel"), "ahead"), subst);
  EXPECT_EQ(ToString(*r), "Infront [sel] {ahead}");
}

TEST(Subst, RangeArgsSubstituted) {
  // Rel {ahead(OT)} with Rel -> Infront, OT -> Ontop.
  Substitution subst;
  subst.relations["Rel"] = Rel("Infront");
  subst.relations["OT"] = Rel("Ontop");
  RangePtr r = SubstituteRange(
      Constructed(Rel("Rel"), "ahead", {Rel("OT")}), subst);
  EXPECT_EQ(ToString(*r), "Infront {ahead(Ontop)}");
}

TEST(Subst, SelectorArgsSubstituted) {
  Substitution subst;
  subst.scalars["Obj"] = Str("x");
  RangePtr r = SubstituteRange(
      Selected(Rel("Infront"), "hidden_by", {Param("Obj")}), subst);
  EXPECT_EQ(ToString(*r), "Infront [hidden_by(\"x\")]");
}

TEST(Subst, PredAllShapes) {
  Substitution subst;
  subst.relations["Rel"] = Rel("Infront");
  subst.scalars["p"] = Int(7);
  PredPtr pred = And({
      Eq(FieldRef("r", "a"), Param("p")),
      Not(Some("x", Rel("Rel"), True())),
      Or({In({Param("p")}, Rel("Rel")), All("y", Rel("Rel"), False())}),
  });
  PredPtr out = SubstitutePred(pred, subst);
  EXPECT_EQ(ToString(*out),
            "r.a = 7 AND NOT (SOME x IN Infront (TRUE)) AND (<7> IN Infront "
            "OR ALL y IN Infront (FALSE))");
}

TEST(Subst, BranchSubstitution) {
  Substitution subst;
  subst.relations["Rel"] = Rel("Infront");
  BranchPtr b = MakeBranch(
      {FieldRef("f", "front"), FieldRef("b", "tail")},
      {Each("f", Rel("Rel")), Each("b", Constructed(Rel("Rel"), "ahead"))},
      Eq(FieldRef("f", "back"), FieldRef("b", "head")));
  BranchPtr out = SubstituteBranch(b, subst);
  EXPECT_EQ(ToString(*out),
            "<f.front, b.tail> OF EACH f IN Infront, EACH b IN Infront "
            "{ahead}: f.back = b.head");
}

TEST(Subst, ExprSubstitutesEveryBranch) {
  Substitution subst;
  subst.relations["Rel"] = Rel("X");
  CalcExprPtr e = Union({IdentityBranch("a", Rel("Rel"), True()),
                         IdentityBranch("b", Rel("Rel"), True())});
  CalcExprPtr out = SubstituteExpr(e, subst);
  for (const BranchPtr& branch : out->branches()) {
    EXPECT_EQ(branch->bindings()[0].range->relation(), "X");
  }
}

TEST(FieldSubst, ReplacesMatchingFieldRefs) {
  FieldSubstitution subst;
  subst[{"r", "head"}] = FieldRef("f", "front");
  subst[{"r", "tail"}] = FieldRef("b", "back");
  PredPtr pred = And({Eq(FieldRef("r", "head"), Str("x")),
                      Ne(FieldRef("r", "tail"), FieldRef("other", "head"))});
  PredPtr out = SubstituteFields(pred, subst);
  EXPECT_EQ(ToString(*out), "f.front = \"x\" AND b.back # other.head");
}

TEST(FieldSubst, TermReplacement) {
  FieldSubstitution subst;
  subst[{"r", "n"}] = Int(3);
  TermPtr out = SubstituteFields(Add(FieldRef("r", "n"), Int(1)), subst);
  EXPECT_EQ(ToString(*out), "(3 + 1)");
}

TEST(FieldSubst, LeavesQuantifierStructureIntact) {
  FieldSubstitution subst;
  subst[{"r", "x"}] = FieldRef("q", "y");
  PredPtr pred = Some("s", Rel("R"),
                      Eq(FieldRef("r", "x"), FieldRef("s", "v")));
  PredPtr out = SubstituteFields(pred, subst);
  EXPECT_EQ(ToString(*out), "SOME s IN R (q.y = s.v)");
}

}  // namespace
}  // namespace datacon
