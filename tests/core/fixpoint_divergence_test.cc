#include <gtest/gtest.h>

#include "ast/builder.h"
#include "core/fixpoint.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests
using testing::ReferenceClosure;
using testing::ToPairSet;

/// Materializes two independent root ranges in one evaluator — two separate
/// recursive components inside a single system evaluation.
Status EvalTwoComponents(Database* db, const RangePtr& a, const RangePtr& b,
                         EvalOptions options) {
  ApplicationGraph graph(&db->catalog());
  DATACON_ASSIGN_OR_RETURN(int root_a, graph.AddRootRange(*a));
  DATACON_ASSIGN_OR_RETURN(int root_b, graph.AddRootRange(*b));
  (void)root_a;
  (void)root_b;
  SystemEvaluator ev(&db->catalog(), &graph, options);
  return ev.MaterializeAll();
}

EvalOptions Bounded(FixpointStrategy strategy, size_t max_iterations) {
  EvalOptions o;
  o.strategy = strategy;
  o.max_iterations = max_iterations;
  return o;
}

/// max_iterations is a PER-COMPONENT budget: a program with several
/// recursive components must not charge one component's rounds against
/// another's. A chain of 12 nodes converges in ~13 rounds, so a budget of
/// 16 suffices for each component individually but not for the sum — the
/// old semi-naive bound compared the globally accumulated stats_.iterations
/// and spuriously diverged on the second component.
TEST(FixpointDivergence, BudgetIsPerComponentSemiNaive) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(12)).ok());
  ASSERT_TRUE(workload::SetupClosure(&db, "h", workload::Chain(12)).ok());
  Status s = EvalTwoComponents(&db, Constructed(Rel("g_E"), "g_tc"),
                               Constructed(Rel("h_E"), "h_tc"),
                               Bounded(FixpointStrategy::kSemiNaive, 16));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(FixpointDivergence, BudgetIsPerComponentNaive) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(12)).ok());
  ASSERT_TRUE(workload::SetupClosure(&db, "h", workload::Chain(12)).ok());
  Status s = EvalTwoComponents(&db, Constructed(Rel("g_E"), "g_tc"),
                               Constructed(Rel("h_E"), "h_tc"),
                               Bounded(FixpointStrategy::kNaive, 16));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(FixpointDivergence, ExhaustedBudgetStillDiverges) {
  // The per-component fix must not loosen the bound itself: a budget below
  // what one component needs still reports divergence, for both strategies.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(12)).ok());
  for (FixpointStrategy strategy :
       {FixpointStrategy::kNaive, FixpointStrategy::kSemiNaive}) {
    ApplicationGraph graph(&db.catalog());
    RangePtr range = Constructed(Rel("g_E"), "g_tc");
    Result<int> root = graph.AddRootRange(*range);
    ASSERT_TRUE(root.ok());
    SystemEvaluator ev(&db.catalog(), &graph, Bounded(strategy, 5));
    EXPECT_EQ(ev.MaterializeAll().code(), StatusCode::kDivergence);
  }
}

/// Builds the non-linear transitive closure over `rel_name`'s edge type:
///   tc = Rel  union  {<f.src, s.dst> | f, s IN Rel{tc}: f.dst = s.src}
/// with BOTH join sides recursive — the shape whose differential rounds
/// used to re-derive all-new-tuple combinations once per occurrence.
Status DefineNonlinearTc(Database* db, const std::string& ctor_name) {
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("f", "src"), FieldRef("s", "dst")},
                  {Each("f", Constructed(Rel("Rel"), ctor_name)),
                   Each("s", Constructed(Rel("Rel"), ctor_name))},
                  Eq(FieldRef("f", "dst"), FieldRef("s", "src")))});
  auto decl = std::make_shared<ConstructorDecl>(
      ctor_name, FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "edge", body);
  return db->DefineConstructor(decl);
}

Status SetupNonlinear(Database* db, const workload::EdgeList& g) {
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "edge", Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("E", "edge"));
  DATACON_RETURN_IF_ERROR(workload::LoadEdges(db, "E", g));
  return DefineNonlinearTc(db, "ntc");
}

Result<Relation> EvalOne(Database* db, const RangePtr& range,
                         EvalOptions options, EvalStats* stats = nullptr) {
  ApplicationGraph graph(&db->catalog());
  DATACON_ASSIGN_OR_RETURN(int root, graph.AddRootRange(*range));
  (void)root;
  SystemEvaluator ev(&db->catalog(), &graph, options);
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());
  DATACON_ASSIGN_OR_RETURN(const Relation* rel, ev.Resolve(*range));
  if (stats != nullptr) *stats = ev.stats();
  return *rel;
}

TEST(FixpointNonlinear, NaiveAndSemiNaiveAgreeOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    workload::EdgeList g = workload::RandomDigraph(10, 22, seed);
    Database db;
    ASSERT_TRUE(SetupNonlinear(&db, g).ok());
    RangePtr range = Constructed(Rel("E"), "ntc");

    EvalOptions naive;
    naive.strategy = FixpointStrategy::kNaive;
    EvalOptions semi;
    semi.strategy = FixpointStrategy::kSemiNaive;
    Result<Relation> n = EvalOne(&db, range, naive);
    Result<Relation> s = EvalOne(&db, range, semi);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(n->SortedTuples(), s->SortedTuples()) << "seed=" << seed;
    EXPECT_EQ(ToPairSet(*s), ReferenceClosure(g)) << "seed=" << seed;
  }
}

TEST(FixpointNonlinear, DifferentialRoundsCountEachDerivationOnce) {
  // Chain 0 -> 1 -> 2. Hand-computed environment count:
  //   round 1 (seed): identity branch emits the 2 edges; the join over two
  //     empty approximations emits nothing                    -> 2 envs
  //   round 2: exactly one pair joins, (0,1)x(1,2) -> (0,2)   -> 1 env
  //   round 3: no pair involving the new tuple joins          -> 0 envs
  // Total: 3. The pre-fix rewrite evaluated occurrence j != i against the
  // *full* totals on both sides, so round 2 derived (0,2) twice (once per
  // occurrence) and reported 4.
  workload::EdgeList g = workload::Chain(3);
  Database db;
  ASSERT_TRUE(SetupNonlinear(&db, g).ok());

  EvalOptions semi;
  semi.strategy = FixpointStrategy::kSemiNaive;
  EvalStats stats;
  Result<Relation> r =
      EvalOne(&db, Constructed(Rel("E"), "ntc"), semi, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);  // (0,1), (1,2), (0,2)
  EXPECT_EQ(stats.tuples_considered, 3u);
}

}  // namespace
}  // namespace datacon
