#include "core/capture.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests
using testing::ReferenceClosure;
using testing::ToPairSet;

Schema EdgeSchema() {
  return Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}});
}

ConstructorDeclPtr MakeCtor(CalcExprPtr body) {
  return std::make_shared<ConstructorDecl>(
      "tc", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "edge", std::move(body));
}

BranchPtr BaseBranch() { return IdentityBranch("r", Rel("Rel"), True()); }

BranchPtr LeftLinearStep() {
  return MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                    {Each("f", Rel("Rel")),
                     Each("b", Constructed(Rel("Rel"), "tc"))},
                    Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
}

TEST(DetectTc, AheadShapeMatches) {
  auto info = DetectTransitiveClosure(*MakeCtor(Union({BaseBranch(),
                                                       LeftLinearStep()})));
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->left_linear);
}

TEST(DetectTc, BranchOrderIrrelevant) {
  EXPECT_TRUE(DetectTransitiveClosure(
                  *MakeCtor(Union({LeftLinearStep(), BaseBranch()})))
                  .has_value());
}

TEST(DetectTc, FlippedEqualityMatches) {
  BranchPtr step = MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                              {Each("f", Rel("Rel")),
                               Each("b", Constructed(Rel("Rel"), "tc"))},
                              Eq(FieldRef("b", "src"), FieldRef("f", "dst")));
  EXPECT_TRUE(DetectTransitiveClosure(*MakeCtor(Union({BaseBranch(), step})))
                  .has_value());
}

TEST(DetectTc, RightLinearMatches) {
  // <b.src, f.dst> OF EACH f IN Rel, EACH b IN Rel{tc}: b.dst = f.src.
  BranchPtr step = MakeBranch({FieldRef("b", "src"), FieldRef("f", "dst")},
                              {Each("f", Rel("Rel")),
                               Each("b", Constructed(Rel("Rel"), "tc"))},
                              Eq(FieldRef("b", "dst"), FieldRef("f", "src")));
  auto info = DetectTransitiveClosure(*MakeCtor(Union({BaseBranch(), step})));
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->left_linear);
}

TEST(DetectTc, ExplicitProjectionBaseBranchMatches) {
  BranchPtr base = MakeBranch({FieldRef("r", "src"), FieldRef("r", "dst")},
                              {Each("r", Rel("Rel"))}, True());
  EXPECT_TRUE(DetectTransitiveClosure(
                  *MakeCtor(Union({base, LeftLinearStep()})))
                  .has_value());
}

TEST(DetectTc, RejectsFilteredBase) {
  BranchPtr base = IdentityBranch("r", Rel("Rel"),
                                  Eq(FieldRef("r", "src"), Int(0)));
  EXPECT_FALSE(DetectTransitiveClosure(
                   *MakeCtor(Union({base, LeftLinearStep()})))
                   .has_value());
}

TEST(DetectTc, RejectsExtraJoinConjunct) {
  BranchPtr step = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("Rel")), Each("b", Constructed(Rel("Rel"), "tc"))},
      And({Eq(FieldRef("f", "dst"), FieldRef("b", "src")),
           Ne(FieldRef("f", "src"), FieldRef("b", "dst"))}));
  EXPECT_FALSE(DetectTransitiveClosure(*MakeCtor(Union({BaseBranch(), step})))
                   .has_value());
}

TEST(DetectTc, RejectsThreeBranches) {
  EXPECT_FALSE(DetectTransitiveClosure(*MakeCtor(Union(
                   {BaseBranch(), LeftLinearStep(), LeftLinearStep()})))
                   .has_value());
}

TEST(DetectTc, RejectsParameterizedConstructor) {
  auto decl = std::make_shared<ConstructorDecl>(
      "tc", FormalRelation{"Rel", "edge"},
      std::vector<FormalRelation>{{"P", "edge"}}, std::vector<FormalScalar>{},
      "edge", Union({BaseBranch(), LeftLinearStep()}));
  EXPECT_FALSE(DetectTransitiveClosure(*decl).has_value());
}

TEST(DetectTc, RejectsWrongProjection) {
  // <f.dst, b.dst> — source column from the join side.
  BranchPtr step = MakeBranch({FieldRef("f", "dst"), FieldRef("b", "dst")},
                              {Each("f", Rel("Rel")),
                               Each("b", Constructed(Rel("Rel"), "tc"))},
                              Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  EXPECT_FALSE(DetectTransitiveClosure(*MakeCtor(Union({BaseBranch(), step})))
                   .has_value());
}

TEST(DetectTc, RejectsRecursionThroughOtherConstructor) {
  BranchPtr step = MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                              {Each("f", Rel("Rel")),
                               Each("b", Constructed(Rel("Rel"), "other"))},
                              Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  EXPECT_FALSE(DetectTransitiveClosure(*MakeCtor(Union({BaseBranch(), step})))
                   .has_value());
}

Relation LoadEdges(const workload::EdgeList& g) {
  Relation r(EdgeSchema());
  for (const auto& [a, b] : g.edges) {
    EXPECT_TRUE(r.Insert(Tuple({Value::Int(a), Value::Int(b)})).ok());
  }
  return r;
}

class ClosureAlgoTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosureAlgoTest, FullClosureMatchesReference) {
  workload::EdgeList g =
      workload::RandomDigraph(14, 30, static_cast<uint64_t>(GetParam()));
  Relation edges = LoadEdges(g);
  Result<Relation> closure = FullClosure(edges, EdgeSchema());
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(ToPairSet(*closure), ReferenceClosure(g));
}

TEST_P(ClosureAlgoTest, SeededClosureIsRestrictedReference) {
  workload::EdgeList g =
      workload::RandomDigraph(14, 30, static_cast<uint64_t>(GetParam()));
  Relation edges = LoadEdges(g);
  std::set<std::pair<int, int>> reference = ReferenceClosure(g);
  for (int seed_node : {0, 3, 7}) {
    Result<Relation> closure =
        SeededClosure(edges, {Value::Int(seed_node)}, EdgeSchema());
    ASSERT_TRUE(closure.ok());
    std::set<std::pair<int, int>> expected;
    for (const auto& [a, b] : reference) {
      if (a == seed_node) expected.emplace(a, b);
    }
    EXPECT_EQ(ToPairSet(*closure), expected) << "seed " << seed_node;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureAlgoTest, ::testing::Range(0, 8));

TEST(Closure, CycleIncludesSelfPairs) {
  Relation edges = LoadEdges(workload::Cycle(3));
  Result<Relation> closure = FullClosure(edges, EdgeSchema());
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->size(), 9u);
  EXPECT_TRUE(closure->Contains(Tuple({Value::Int(0), Value::Int(0)})));
}

TEST(Closure, SeededWithMultipleSeeds) {
  Relation edges = LoadEdges(workload::Chain(5));
  Result<Relation> closure = SeededClosure(
      edges, {Value::Int(0), Value::Int(3)}, EdgeSchema());
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->size(), 5u);  // 0->{1,2,3,4}, 3->{4}
}

TEST(Closure, SeedWithNoOutEdges) {
  Relation edges = LoadEdges(workload::Chain(3));
  Result<Relation> closure = SeededClosure(edges, {Value::Int(2)}, EdgeSchema());
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(closure->empty());
}

TEST(Closure, NonBinaryRelationRejected) {
  Relation unary(Schema({{"x", ValueType::kInt}}));
  EXPECT_EQ(FullClosure(unary, unary.schema()).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(SeededClosure(unary, {Value::Int(0)}, unary.schema())
                .status()
                .code(),
            StatusCode::kTypeError);
}

}  // namespace
}  // namespace datacon
