#include <gtest/gtest.h>

#include "ast/builder.h"
#include "core/fixpoint.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests
using testing::ReferenceClosure;
using testing::ToPairSet;

/// Evaluates `range` against `db`'s catalog with the given options,
/// bypassing Database's optimizer (so no capture rules fire).
Result<Relation> EvalRaw(Database* db, const RangePtr& range,
                         EvalOptions options, EvalStats* stats = nullptr) {
  ApplicationGraph graph(&db->catalog());
  DATACON_ASSIGN_OR_RETURN(int root, graph.AddRootRange(*range));
  (void)root;
  SystemEvaluator ev(&db->catalog(), &graph, options);
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());
  DATACON_ASSIGN_OR_RETURN(const Relation* rel, ev.Resolve(*range));
  if (stats != nullptr) *stats = ev.stats();
  return *rel;
}

Status DefineNonLinearClosure(Database* db) {
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "edge",
      Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("E", "edge"));
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("x", "src"), FieldRef("y", "dst")},
                  {Each("x", Constructed(Rel("Rel"), "tc2")),
                   Each("y", Constructed(Rel("Rel"), "tc2"))},
                  Eq(FieldRef("x", "dst"), FieldRef("y", "src")))});
  auto decl = std::make_shared<ConstructorDecl>(
      "tc2", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "edge", body);
  return db->DefineConstructor(decl);
}

// ---------------------------------------------------------------------------
// Pinned counters. These values are load-bearing: they encode the exact
// amount of logical work the semi-naive engine performs after the PR1
// fixes (non-linear differential rewrite; no double-counting of inserts
// from non-differentiable branches). A change here is a change to the
// evaluation algorithm, not noise.
// ---------------------------------------------------------------------------

TEST(FixpointStats, LinearClosureSemiNaivePinned) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());

  EvalOptions options;
  options.strategy = FixpointStrategy::kSemiNaive;
  EvalStats stats;
  Result<Relation> r =
      EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), options, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ToPairSet(*r), ReferenceClosure(workload::Chain(4)));

  // Chain(4): seed inserts the 3 edges; deltas shrink 3 -> 2 -> 1 -> 0.
  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_EQ(stats.tuples_considered, 6u);
  EXPECT_EQ(stats.tuples_inserted, 6u);
}

TEST(FixpointStats, NonLinearClosureSemiNaivePinned) {
  // Doubly recursive closure: both occurrences of tc2 are recursive, so
  // the differential rewrite must expand into delta/old cross terms. The
  // pinned numbers are the regression test for that rewrite: before the
  // fix the engine either missed tuples (wrong rewrite) or double-counted
  // inserts from the seed branch re-run in every round.
  Database db;
  ASSERT_TRUE(DefineNonLinearClosure(&db).ok());
  ASSERT_TRUE(workload::LoadEdges(&db, "E", workload::Chain(4)).ok());

  EvalOptions options;
  options.strategy = FixpointStrategy::kSemiNaive;
  EvalStats stats;
  Result<Relation> r =
      EvalRaw(&db, Constructed(Rel("E"), "tc2"), options, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ToPairSet(*r), ReferenceClosure(workload::Chain(4)));

  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_EQ(stats.tuples_considered, 7u);
  EXPECT_EQ(stats.tuples_inserted, 6u);
}

TEST(FixpointStats, NaiveAndSemiNaiveAgreeOnInsertions) {
  workload::EdgeList g = workload::RandomDigraph(24, 64, 7);
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());

  EvalStats naive_stats, semi_stats;
  EvalOptions naive;
  naive.strategy = FixpointStrategy::kNaive;
  EvalOptions semi;
  semi.strategy = FixpointStrategy::kSemiNaive;
  Result<Relation> a =
      EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), naive, &naive_stats);
  Result<Relation> b =
      EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), semi, &semi_stats);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->SortedTuples(), b->SortedTuples());
  // Semi-naive inserts every closure tuple exactly once; naive (Jacobi)
  // rebuilds each round's approximation from scratch, so it re-inserts
  // prior tuples and both of its counters dominate semi-naive's.
  EXPECT_EQ(semi_stats.tuples_inserted, b->size());
  EXPECT_GE(naive_stats.tuples_inserted, semi_stats.tuples_inserted);
  EXPECT_GE(naive_stats.tuples_considered, semi_stats.tuples_considered);
}

// ---------------------------------------------------------------------------
// max_iterations is a per-component bound (PR1 fix): stacked closures
// whose rounds sum past the bound must still converge as long as each
// component individually stays within it.
// ---------------------------------------------------------------------------

TEST(FixpointStats, MaxIterationsBoundsEachComponentSeparately) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());

  EvalOptions options;
  options.strategy = FixpointStrategy::kSemiNaive;
  options.max_iterations = 4;
  EvalStats stats;
  // tc(tc(E)): the inner closure needs 4 rounds, the outer 2 — 6 total,
  // above the bound, but neither component individually exceeds it.
  RangePtr stacked =
      Constructed(Constructed(Rel("g_E"), "g_tc"), "g_tc");
  Result<Relation> r = EvalRaw(&db, stacked, options, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ToPairSet(*r), ReferenceClosure(workload::Chain(4)));
  EXPECT_EQ(stats.iterations, 6u);
}

TEST(FixpointStats, MaxIterationsStillTripsWithinOneComponent) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(6)).ok());

  EvalOptions options;
  options.strategy = FixpointStrategy::kSemiNaive;
  options.max_iterations = 3;
  Result<Relation> r =
      EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), options);
  EXPECT_EQ(r.status().code(), StatusCode::kDivergence)
      << r.status().ToString();
}

// ---------------------------------------------------------------------------
// The flat stats now carry branch-level counters too; the deterministic
// ones must not vary with the thread count.
// ---------------------------------------------------------------------------

TEST(FixpointStats, BranchCountersDeterministicAcrossThreads) {
  workload::EdgeList g = workload::RandomDigraph(48, 160, 3);
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());

  EvalOptions serial;
  serial.strategy = FixpointStrategy::kSemiNaive;
  serial.exec.num_threads = 1;
  EvalOptions parallel = serial;
  parallel.exec.num_threads = 8;

  EvalStats s1, s8;
  ASSERT_TRUE(
      EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), serial, &s1).ok());
  ASSERT_TRUE(
      EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), parallel, &s8).ok());
  EXPECT_EQ(s1.iterations, s8.iterations);
  EXPECT_EQ(s1.tuples_considered, s8.tuples_considered);
  EXPECT_EQ(s1.tuples_inserted, s8.tuples_inserted);
  EXPECT_EQ(s1.outer_tuples, s8.outer_tuples);
  EXPECT_EQ(s1.index_builds, s8.index_builds);
  EXPECT_EQ(s1.index_probes, s8.index_probes);
  // Scheduling detail legitimately differs: serial runs take no snapshots.
  EXPECT_EQ(s1.snapshot_materializations, 0u);
  EXPECT_EQ(s1.chunks_dispatched, 0u);
}

}  // namespace
}  // namespace datacon
