#include "core/access_path.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

CalcExprPtr SourceForm() {
  return Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Param("start")))});
}

TEST(PhysicalAccessPath, ProbesMatchPerParameterQueries) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g",
                                     workload::RandomDigraph(16, 32, 4))
                  .ok());
  Result<PhysicalAccessPath> path =
      PhysicalAccessPath::Build(&db, SourceForm(), "start");
  ASSERT_TRUE(path.ok()) << path.status().ToString();

  Result<PreparedQuery> prepared =
      db.Prepare(SourceForm(), {{"start", ValueType::kInt}});
  ASSERT_TRUE(prepared.ok());

  for (int node = 0; node < 16; ++node) {
    Result<Relation> probed = path->Execute(Value::Int(node));
    ASSERT_TRUE(probed.ok());
    Result<Relation> computed =
        prepared->Execute({{"start", Value::Int(node)}});
    ASSERT_TRUE(computed.ok());
    EXPECT_TRUE(probed->SameTuples(*computed)) << "node " << node;
  }
}

TEST(PhysicalAccessPath, MaterializesTheFullForm) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(10)).ok());
  Result<PhysicalAccessPath> path =
      PhysicalAccessPath::Build(&db, SourceForm(), "start");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->materialized_size(), 45u);  // 10*9/2
}

TEST(PhysicalAccessPath, ResidualConjunctsApplyAtBuildTime) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(10)).ok());
  CalcExprPtr form = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      And({Eq(FieldRef("r", "src"), Param("start")),
           Ne(FieldRef("r", "dst"), Int(5))}))});
  Result<PhysicalAccessPath> path =
      PhysicalAccessPath::Build(&db, form, "start");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  Result<Relation> from0 = path->Execute(Value::Int(0));
  ASSERT_TRUE(from0.ok());
  EXPECT_EQ(from0->size(), 8u);  // (0,1..9) minus (0,5)
  EXPECT_FALSE(from0->Contains(Tuple({Value::Int(0), Value::Int(5)})));
}

TEST(PhysicalAccessPath, TargetListFormsSupported) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(6)).ok());
  // <r.dst, r.src> OF ... : r.src = start — the bound attribute sits at
  // target position 1.
  CalcExprPtr form = Union({MakeBranch(
      {FieldRef("r", "dst"), FieldRef("r", "src")},
      {Each("r", Constructed(Rel("g_E"), "g_tc"))},
      Eq(FieldRef("r", "src"), Param("start")))});
  Result<PhysicalAccessPath> path =
      PhysicalAccessPath::Build(&db, form, "start");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  Result<Relation> from2 = path->Execute(Value::Int(2));
  ASSERT_TRUE(from2.ok());
  EXPECT_EQ(from2->size(), 3u);
  EXPECT_TRUE(from2->Contains(Tuple({Value::Int(5), Value::Int(2)})));
}

TEST(PhysicalAccessPath, UnknownValueYieldsEmpty) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  Result<PhysicalAccessPath> path =
      PhysicalAccessPath::Build(&db, SourceForm(), "start");
  ASSERT_TRUE(path.ok());
  Result<Relation> missing = path->Execute(Value::Int(99));
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

TEST(PhysicalAccessPath, RejectsMultiBranchForms) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  CalcExprPtr form = Union({
      IdentityBranch("r", Rel("g_E"), Eq(FieldRef("r", "src"), Param("p"))),
      IdentityBranch("q", Rel("g_E"), True()),
  });
  EXPECT_EQ(PhysicalAccessPath::Build(&db, form, "p").status().code(),
            StatusCode::kUnsupported);
}

TEST(PhysicalAccessPath, RejectsFormsWithoutParamEquality) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  CalcExprPtr form = Union({IdentityBranch(
      "r", Rel("g_E"), Lt(FieldRef("r", "src"), Param("p")))});
  EXPECT_EQ(PhysicalAccessPath::Build(&db, form, "p").status().code(),
            StatusCode::kUnsupported);
}

TEST(PhysicalAccessPath, RejectsParamOutsideBindingEquality) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  CalcExprPtr form = Union({IdentityBranch(
      "r", Rel("g_E"),
      And({Eq(FieldRef("r", "src"), Param("p")),
           Ne(FieldRef("r", "dst"), Param("p"))}))});
  EXPECT_EQ(PhysicalAccessPath::Build(&db, form, "p").status().code(),
            StatusCode::kUnsupported);
}

TEST(PhysicalAccessPath, SnapshotSemantics) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  Result<PhysicalAccessPath> path =
      PhysicalAccessPath::Build(&db, SourceForm(), "start");
  ASSERT_TRUE(path.ok());
  size_t before = path->Execute(Value::Int(0)).value().size();
  // New facts do not appear until rebuild.
  ASSERT_TRUE(db.Insert("g_E", Tuple({Value::Int(3), Value::Int(9)})).ok());
  EXPECT_EQ(path->Execute(Value::Int(0)).value().size(), before);
  Result<PhysicalAccessPath> rebuilt =
      PhysicalAccessPath::Build(&db, SourceForm(), "start");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_GT(rebuilt->Execute(Value::Int(0)).value().size(), before);
}

}  // namespace
}  // namespace datacon
