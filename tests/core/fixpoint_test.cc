#include "core/fixpoint.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests
using testing::ReferenceClosure;
using testing::ToPairSet;

/// Evaluates `range` against `db`'s catalog with the given options,
/// bypassing Database's optimizer (this file tests the raw engine).
Result<Relation> EvalRaw(Database* db, const RangePtr& range,
                         EvalOptions options, EvalStats* stats = nullptr) {
  ApplicationGraph graph(&db->catalog());
  DATACON_ASSIGN_OR_RETURN(int root, graph.AddRootRange(*range));
  SystemEvaluator ev(&db->catalog(), &graph, options);
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());
  Result<const Relation*> rel =
      root >= 0 ? ev.Resolve(*range)
                : Result<const Relation*>(Status::Internal("plain range"));
  if (!rel.ok()) return rel.status();
  if (stats != nullptr) *stats = ev.stats();
  return *rel.value();
}

EvalOptions Naive() {
  EvalOptions o;
  o.strategy = FixpointStrategy::kNaive;
  return o;
}

EvalOptions SemiNaive() {
  EvalOptions o;
  o.strategy = FixpointStrategy::kSemiNaive;
  return o;
}

TEST(Fixpoint, EmptyBaseYieldsEmptyClosure) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::EdgeList{}).ok());
  for (EvalOptions o : {Naive(), SemiNaive()}) {
    Result<Relation> r = EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), o);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->empty());
  }
}

TEST(Fixpoint, SingleEdge) {
  Database db;
  workload::EdgeList g;
  g.node_count = 2;
  g.edges = {{0, 1}};
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  Result<Relation> r = EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), SemiNaive());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(Fixpoint, CycleConverges) {
  // Cyclic data is exactly where fixpoint evaluation shines and pure
  // proof-search diverges.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Cycle(4)).ok());
  Result<Relation> r = EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), SemiNaive());
  ASSERT_TRUE(r.ok());
  // Every pair is reachable: 4*4 = 16.
  EXPECT_EQ(r->size(), 16u);
}

TEST(Fixpoint, SemiNaiveIterationsScaleWithDepthNotSize) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(20)).ok());
  EvalStats semi_stats;
  Result<Relation> semi = EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"),
                                  SemiNaive(), &semi_stats);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(semi->size(), 190u);  // 20*19/2
  // Depth 19 closure: roughly depth-many rounds, far below tuple count.
  EXPECT_LE(semi_stats.iterations, 25u);
  EXPECT_GE(semi_stats.iterations, 5u);
}

TEST(Fixpoint, NaiveConsidersMoreTuplesThanSemiNaive) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(24)).ok());
  EvalStats naive_stats, semi_stats;
  ASSERT_TRUE(EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), Naive(),
                      &naive_stats)
                  .ok());
  ASSERT_TRUE(EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), SemiNaive(),
                      &semi_stats)
                  .ok());
  // The paper's motivation for compiled evaluation: naive re-derives every
  // tuple every round.
  EXPECT_GT(naive_stats.tuples_considered, 2 * semi_stats.tuples_considered);
}

class ClosureStrategyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClosureStrategyTest, AllStrategiesMatchFloydWarshall) {
  auto [seed, edge_count] = GetParam();
  workload::EdgeList g =
      workload::RandomDigraph(12, edge_count, static_cast<uint64_t>(seed));
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  std::set<std::pair<int, int>> expected = ReferenceClosure(g);

  for (EvalOptions o : {Naive(), SemiNaive()}) {
    Result<Relation> r = EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"), o);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(ToPairSet(*r), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ClosureStrategyTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(8, 20, 40)));

/// Reference for the mutual ahead/above system: `ahead` holds (a, z) iff a
/// path in the union graph from a to z starts with an Infront edge;
/// symmetrically for `above`.
std::set<std::pair<std::string, std::string>> ReferenceFirstEdge(
    const std::vector<std::pair<std::string, std::string>>& first,
    const std::vector<std::pair<std::string, std::string>>& first_rel,
    const std::vector<std::pair<std::string, std::string>>& other_rel) {
  (void)first;
  std::map<std::string, std::set<std::string>> succ;
  for (const auto& [a, b] : first_rel) succ[a].insert(b);
  for (const auto& [a, b] : other_rel) succ[a].insert(b);
  // reach[x] = nodes reachable from x (>= 0 edges) in the union graph.
  auto reach_from = [&](const std::string& start) {
    std::set<std::string> seen = {start};
    std::vector<std::string> stack = {start};
    while (!stack.empty()) {
      std::string u = stack.back();
      stack.pop_back();
      for (const std::string& v : succ[u]) {
        if (seen.insert(v).second) stack.push_back(v);
      }
    }
    return seen;
  };
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& [a, b] : first_rel) {
    for (const std::string& z : reach_from(b)) out.emplace(a, z);
  }
  return out;
}

class MutualRecursionTest : public ::testing::TestWithParam<int> {};

TEST_P(MutualRecursionTest, MatchesFirstEdgeReference) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Database db;
  ASSERT_TRUE(workload::SetupCadScene(&db, 8, 10, 10, seed).ok());

  std::vector<std::pair<std::string, std::string>> infront, ontop;
  for (const Tuple& t : db.GetRelation("Infront").value()->tuples()) {
    infront.emplace_back(t.value(0).AsString(), t.value(1).AsString());
  }
  for (const Tuple& t : db.GetRelation("Ontop").value()->tuples()) {
    ontop.emplace_back(t.value(0).AsString(), t.value(1).AsString());
  }

  for (EvalOptions o : {Naive(), SemiNaive()}) {
    Result<Relation> ahead = EvalRaw(
        &db, Constructed(Rel("Infront"), "ahead", {Rel("Ontop")}), o);
    ASSERT_TRUE(ahead.ok()) << ahead.status().ToString();
    std::set<std::pair<std::string, std::string>> got;
    for (const Tuple& t : ahead->tuples()) {
      got.emplace(t.value(0).AsString(), t.value(1).AsString());
    }
    EXPECT_EQ(got, ReferenceFirstEdge(infront, infront, ontop));

    Result<Relation> above = EvalRaw(
        &db, Constructed(Rel("Ontop"), "above", {Rel("Infront")}), o);
    ASSERT_TRUE(above.ok());
    got.clear();
    for (const Tuple& t : above->tuples()) {
      got.emplace(t.value(0).AsString(), t.value(1).AsString());
    }
    EXPECT_EQ(got, ReferenceFirstEdge(ontop, ontop, infront));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutualRecursionTest, ::testing::Range(0, 6));

class Section33Test : public ::testing::Test {
 protected:
  Section33Test() {
    EXPECT_TRUE(db_.DefineRelationType(
                       "cardrel", Schema({{"number", ValueType::kInt}}))
                    .ok());
    EXPECT_TRUE(db_.CreateRelation("Base", "cardrel").ok());
    for (int i = 0; i <= 6; ++i) {
      EXPECT_TRUE(db_.Insert("Base", Tuple({Value::Int(i)})).ok());
    }
  }

  Database db_;
};

TEST_F(Section33Test, NonsenseOscillatesForever) {
  // CONSTRUCTOR nonsense: EACH r IN Rel: NOT (<r.number> IN Rel{nonsense}).
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"),
      Not(In({FieldRef("r", "number")}, Constructed(Rel("Rel"), "nonsense"))))});
  auto decl = std::make_shared<ConstructorDecl>(
      "nonsense", FormalRelation{"Rel", "cardrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "cardrel",
      body);
  ASSERT_TRUE(db_.DefineConstructorUnchecked(decl).ok());

  EvalOptions o;
  o.unchecked = true;
  o.max_iterations = 100;
  Result<Relation> r =
      EvalRaw(&db_, Constructed(Rel("Base"), "nonsense"), o);
  EXPECT_EQ(r.status().code(), StatusCode::kDivergence);
}

TEST_F(Section33Test, StrangeConvergesToEvens) {
  // CONSTRUCTOR strange: EACH r IN Baserel:
  //   NOT SOME s IN Baserel{strange} (r.number = s.number + 1).
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"),
      Not(Some("s", Constructed(Rel("Rel"), "strange"),
               Eq(FieldRef("r", "number"),
                  Add(FieldRef("s", "number"), Int(1))))))});
  auto decl = std::make_shared<ConstructorDecl>(
      "strange", FormalRelation{"Rel", "cardrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "cardrel",
      body);
  ASSERT_TRUE(db_.DefineConstructorUnchecked(decl).ok());

  EvalOptions o;
  o.unchecked = true;
  o.max_iterations = 100;
  Result<Relation> r = EvalRaw(&db_, Constructed(Rel("Base"), "strange"), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The paper: Rel{strange} for {0..6} has the limit {0, 2, 4, 6}.
  std::set<int64_t> got;
  for (const Tuple& t : r->tuples()) got.insert(t.value(0).AsInt());
  EXPECT_EQ(got, (std::set<int64_t>{0, 2, 4, 6}));
}

TEST_F(Section33Test, StrictModeRefusesNonPositive) {
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"),
      Not(In({FieldRef("r", "number")}, Constructed(Rel("Rel"), "bad"))))});
  auto decl = std::make_shared<ConstructorDecl>(
      "bad", FormalRelation{"Rel", "cardrel"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "cardrel", body);
  EXPECT_EQ(db_.DefineConstructor(decl).code(),
            StatusCode::kPositivityViolation);
}

TEST(Fixpoint, RecursionInsideQuantifierIsSoundlyEvaluated) {
  // A branch whose only recursive reference sits inside SOME is
  // non-differentiable; both strategies must still agree with each other.
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  workload::EdgeList g = workload::RandomDigraph(8, 14, 7);
  ASSERT_TRUE(workload::LoadEdges(&db, "E", g).ok());

  // c = E  union  {<f.src, g.dst> | f,g in E, SOME m IN E{c}
  //                (f.dst = m.src AND m.dst = g.src)}.
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch(
           {FieldRef("f", "src"), FieldRef("g", "dst")},
           {Each("f", Rel("Rel")), Each("g", Rel("Rel"))},
           Some("m", Constructed(Rel("Rel"), "c"),
                And({Eq(FieldRef("f", "dst"), FieldRef("m", "src")),
                     Eq(FieldRef("m", "dst"), FieldRef("g", "src"))})))});
  auto decl = std::make_shared<ConstructorDecl>(
      "c", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "edge", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());

  Result<Relation> naive = EvalRaw(&db, Constructed(Rel("E"), "c"), Naive());
  Result<Relation> semi = EvalRaw(&db, Constructed(Rel("E"), "c"), SemiNaive());
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  EXPECT_TRUE(naive->SameTuples(*semi));
  // This shape derives exactly the closure (paths decompose into
  // edge+path+edge steps plus single edges) restricted to length-1 and
  // length>=3... sanity: at least the base edges are present.
  for (const auto& [a, b] : g.edges) {
    EXPECT_TRUE(semi->Contains(Tuple({Value::Int(a), Value::Int(b)})));
  }
}

TEST(Fixpoint, KeyViolationInResultTypeSurfaces) {
  // A constructed relation whose result type declares a key can fail the
  // section 2.2 constraint during construction.
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.DefineRelationType(
                    "keyed", Schema({{"src", ValueType::kInt},
                                     {"dst", ValueType::kInt}},
                                    {0}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  ASSERT_TRUE(db.Insert("E", Tuple({Value::Int(1), Value::Int(2)})).ok());
  ASSERT_TRUE(db.Insert("E", Tuple({Value::Int(1), Value::Int(3)})).ok());

  auto body = Union({IdentityBranch("r", Rel("Rel"), True())});
  auto decl = std::make_shared<ConstructorDecl>(
      "copy", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "keyed", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());

  Result<Relation> r =
      EvalRaw(&db, Constructed(Rel("E"), "copy"), SemiNaive());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyViolation);
}

TEST(Fixpoint, SelectorOnRecursiveRange) {
  // EACH b IN Rel{tc}[big] — a selector applied to the constructed
  // relation within the recursion.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(6)).ok());
  auto sel = std::make_shared<SelectorDecl>(
      "from0", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalScalar>{}, "r", Eq(FieldRef("r", "src"), Int(0)));
  ASSERT_TRUE(db.DefineSelector(sel).ok());

  Result<Relation> r = db.EvalRange(
      Selected(Constructed(Rel("g_E"), "g_tc"), "from0"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 5u);  // (0,1) ... (0,5)
}

}  // namespace
}  // namespace datacon
