#include "core/catalog.h"

#include <gtest/gtest.h>

#include "ast/builder.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

Schema EdgeSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
}

TEST(Catalog, RelationTypes) {
  Catalog catalog;
  ASSERT_TRUE(catalog.DefineRelationType("t", EdgeSchema()).ok());
  EXPECT_EQ(catalog.DefineRelationType("t", EdgeSchema()).code(),
            StatusCode::kAlreadyExists);
  Result<const Schema*> schema = catalog.LookupRelationType("t");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value()->arity(), 2);
  EXPECT_EQ(catalog.LookupRelationType("u").status().code(),
            StatusCode::kNotFound);
}

TEST(Catalog, RejectsInvalidSchema) {
  Catalog catalog;
  Schema bad({{"x", ValueType::kInt}, {"x", ValueType::kInt}});
  EXPECT_EQ(catalog.DefineRelationType("t", bad).code(),
            StatusCode::kInvalidArgument);
}

TEST(Catalog, RelationVariables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.DefineRelationType("t", EdgeSchema()).ok());
  ASSERT_TRUE(catalog.CreateRelation("R", "t").ok());
  EXPECT_EQ(catalog.CreateRelation("R", "t").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.CreateRelation("S", "missing").code(),
            StatusCode::kNotFound);

  Result<Relation*> rel = catalog.LookupRelation("R");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel.value()->empty());
  EXPECT_EQ(*catalog.LookupRelationTypeName("R").value(), "t");

  const Catalog& const_catalog = catalog;
  EXPECT_TRUE(const_catalog.LookupRelation("R").ok());
  EXPECT_FALSE(const_catalog.LookupRelation("missing").ok());
}

TEST(Catalog, Selectors) {
  Catalog catalog;
  auto decl = std::make_shared<SelectorDecl>(
      "s", FormalRelation{"Rel", "t"}, std::vector<FormalScalar>{}, "r",
      True());
  ASSERT_TRUE(catalog.DefineSelector(decl).ok());
  EXPECT_EQ(catalog.DefineSelector(decl).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.LookupSelector("s").ok());
  EXPECT_FALSE(catalog.LookupSelector("other").ok());
  EXPECT_EQ(catalog.selectors().size(), 1u);
}

TEST(Catalog, ConstructorsAndRemoval) {
  Catalog catalog;
  auto decl = std::make_shared<ConstructorDecl>(
      "c", FormalRelation{"Rel", "t"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "t",
      Union({IdentityBranch("r", Rel("Rel"), True())}));
  ASSERT_TRUE(catalog.DefineConstructor(decl).ok());
  EXPECT_EQ(catalog.DefineConstructor(decl).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.LookupConstructor("c").ok());
  catalog.RemoveConstructor("c");
  EXPECT_FALSE(catalog.LookupConstructor("c").ok());
  // Removal of a missing name is a no-op.
  catalog.RemoveConstructor("c");
}

TEST(Catalog, MutationThroughLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.DefineRelationType("t", EdgeSchema()).ok());
  ASSERT_TRUE(catalog.CreateRelation("R", "t").ok());
  Relation* rel = catalog.LookupRelation("R").value();
  ASSERT_TRUE(rel->Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_EQ(catalog.LookupRelation("R").value()->size(), 1u);
}

}  // namespace
}  // namespace datacon
