#include "core/instantiate.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "ast/printer.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(SplitAtLastConstructor, PlainRange) {
  RangeSplit split = SplitAtLastConstructor(*Rel("Infront"));
  EXPECT_FALSE(split.ctor_head.has_value());
  EXPECT_EQ(split.base_relation, "Infront");
  EXPECT_TRUE(split.trailing_selectors.empty());
}

TEST(SplitAtLastConstructor, SelectorsOnly) {
  RangeSplit split = SplitAtLastConstructor(
      *Selected(Selected(Rel("R"), "a"), "b"));
  EXPECT_FALSE(split.ctor_head.has_value());
  EXPECT_EQ(split.trailing_selectors.size(), 2u);
}

TEST(SplitAtLastConstructor, CtorAtEnd) {
  RangeSplit split = SplitAtLastConstructor(
      *Constructed(Selected(Rel("R"), "s"), "c"));
  ASSERT_TRUE(split.ctor_head.has_value());
  EXPECT_EQ(ToString(**split.ctor_head), "R [s] {c}");
  EXPECT_TRUE(split.trailing_selectors.empty());
}

TEST(SplitAtLastConstructor, TrailingSelectorsAfterCtor) {
  RangeSplit split = SplitAtLastConstructor(
      *Selected(Constructed(Rel("R"), "c"), "s"));
  ASSERT_TRUE(split.ctor_head.has_value());
  EXPECT_EQ(ToString(**split.ctor_head), "R {c}");
  ASSERT_EQ(split.trailing_selectors.size(), 1u);
  EXPECT_EQ(split.trailing_selectors[0].name, "s");
}

TEST(SplitAtLastConstructor, PicksLastCtor) {
  RangeSplit split = SplitAtLastConstructor(
      *Constructed(Constructed(Rel("R"), "c1"), "c2"));
  ASSERT_TRUE(split.ctor_head.has_value());
  EXPECT_EQ(ToString(**split.ctor_head), "R {c1} {c2}");
}

class InstantiateTest : public ::testing::Test {
 protected:
  InstantiateTest() {
    Define("edge", {{"src", ValueType::kInt}, {"dst", ValueType::kInt}});
    EXPECT_TRUE(catalog_.CreateRelation("E", "edge").ok());
    EXPECT_TRUE(catalog_.CreateRelation("F", "edge").ok());

    // tc: plain self-recursive closure.
    auto tc_body = Union(
        {IdentityBranch("r", Rel("Rel"), True()),
         MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                    {Each("f", Rel("Rel")),
                     Each("b", Constructed(Rel("Rel"), "tc"))},
                    Eq(FieldRef("f", "dst"), FieldRef("b", "src")))});
    EXPECT_TRUE(catalog_
                    .DefineConstructor(std::make_shared<ConstructorDecl>(
                        "tc", FormalRelation{"Rel", "edge"},
                        std::vector<FormalRelation>{},
                        std::vector<FormalScalar>{}, "edge", tc_body))
                    .ok());

    // m1/m2: mutual recursion through parameters.
    auto m1_body = Union(
        {IdentityBranch("r", Rel("Rel"), True()),
         IdentityBranch("x", Constructed(Rel("P"), "m2", {Rel("Rel")}),
                        True())});
    EXPECT_TRUE(catalog_
                    .DefineConstructor(std::make_shared<ConstructorDecl>(
                        "m1", FormalRelation{"Rel", "edge"},
                        std::vector<FormalRelation>{{"P", "edge"}},
                        std::vector<FormalScalar>{}, "edge", m1_body))
                    .ok());
    auto m2_body = Union(
        {IdentityBranch("r", Rel("Rel"), True()),
         IdentityBranch("x", Constructed(Rel("P"), "m1", {Rel("Rel")}),
                        True())});
    EXPECT_TRUE(catalog_
                    .DefineConstructor(std::make_shared<ConstructorDecl>(
                        "m2", FormalRelation{"Rel", "edge"},
                        std::vector<FormalRelation>{{"P", "edge"}},
                        std::vector<FormalScalar>{}, "edge", m2_body))
                    .ok());
  }

  void Define(const std::string& name, std::vector<Field> fields) {
    EXPECT_TRUE(catalog_.DefineRelationType(name, Schema(std::move(fields)))
                    .ok());
  }

  Catalog catalog_;
};

TEST_F(InstantiateTest, SelfRecursionProducesOneNodeWithSelfEdge) {
  ApplicationGraph graph(&catalog_);
  Result<int> root = graph.AddRootRange(*Constructed(Rel("E"), "tc"));
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(root.value(), 0);
  ASSERT_EQ(graph.nodes().size(), 1u);
  EXPECT_EQ(graph.nodes()[0].key, "E {tc}");
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].from, 0);
  EXPECT_EQ(graph.edges()[0].to, 0);
  EXPECT_FALSE(graph.edges()[0].negative);
}

TEST_F(InstantiateTest, SubstitutedBodyHasNoFormals) {
  ApplicationGraph graph(&catalog_);
  ASSERT_TRUE(graph.AddRootRange(*Constructed(Rel("E"), "tc")).ok());
  const ApplicationGraph::Node& node = graph.nodes()[0];
  EXPECT_EQ(ToString(*node.body->branches()[0]), "EACH r IN E: TRUE");
  EXPECT_EQ(
      ToString(*node.body->branches()[1]),
      "<f.src, b.dst> OF EACH f IN E, EACH b IN E {tc}: f.dst = b.src");
}

TEST_F(InstantiateTest, DistinctBasesAreDistinctNodes) {
  ApplicationGraph graph(&catalog_);
  ASSERT_TRUE(graph.AddRootRange(*Constructed(Rel("E"), "tc")).ok());
  ASSERT_TRUE(graph.AddRootRange(*Constructed(Rel("F"), "tc")).ok());
  EXPECT_EQ(graph.nodes().size(), 2u);
}

TEST_F(InstantiateTest, RepeatedRootIsMemoized) {
  ApplicationGraph graph(&catalog_);
  Result<int> a = graph.AddRootRange(*Constructed(Rel("E"), "tc"));
  Result<int> b = graph.AddRootRange(*Constructed(Rel("E"), "tc"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(graph.nodes().size(), 1u);
}

TEST_F(InstantiateTest, MutualRecursionClosesFinitely) {
  // E{m1(F)} references F{m2(E)} references E{m1(F)} — the finite
  // representation of the infinite derivation sequence.
  ApplicationGraph graph(&catalog_);
  Result<int> root =
      graph.AddRootRange(*Constructed(Rel("E"), "m1", {Rel("F")}));
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(graph.nodes().size(), 2u);
  EXPECT_EQ(graph.nodes()[0].key, "E {m1(F)}");
  EXPECT_EQ(graph.nodes()[1].key, "F {m2(E)}");
  Result<SccDecomposition> scc = graph.Stratify();
  ASSERT_TRUE(scc.ok());
  EXPECT_EQ(scc->component_count(), 1);
  EXPECT_TRUE(scc->cyclic[0]);
}

TEST_F(InstantiateTest, PlainRangeRootReturnsMinusOne) {
  ApplicationGraph graph(&catalog_);
  Result<int> root = graph.AddRootRange(*Rel("E"));
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), -1);
  EXPECT_TRUE(graph.nodes().empty());
}

TEST_F(InstantiateTest, FindNodeUnknownFails) {
  ApplicationGraph graph(&catalog_);
  EXPECT_EQ(graph.FindNode(*Constructed(Rel("E"), "tc")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(InstantiateTest, AddRootsScansQueryExpr) {
  CalcExprPtr expr = Union({MakeBranch(
      {FieldRef("v", "src")},
      {Each("v", Constructed(Rel("E"), "tc"))},
      Some("w", Constructed(Rel("F"), "tc"),
           Eq(FieldRef("w", "src"), FieldRef("v", "dst"))))});
  ApplicationGraph graph(&catalog_);
  ASSERT_TRUE(graph.AddRoots(*expr).ok());
  EXPECT_EQ(graph.nodes().size(), 2u);
}

TEST_F(InstantiateTest, UnknownConstructorFails) {
  ApplicationGraph graph(&catalog_);
  EXPECT_EQ(
      graph.AddRootRange(*Constructed(Rel("E"), "nosuch")).status().code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace datacon
