#include <gtest/gtest.h>

#include "ast/builder.h"
#include "core/fixpoint.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests
using testing::ReferenceClosure;
using testing::ToPairSet;

/// Evaluates `range` against `db`'s catalog with the given options,
/// bypassing Database's optimizer.
Result<Relation> EvalRaw(Database* db, const RangePtr& range,
                         EvalOptions options, EvalStats* stats = nullptr) {
  ApplicationGraph graph(&db->catalog());
  DATACON_ASSIGN_OR_RETURN(int root, graph.AddRootRange(*range));
  (void)root;
  SystemEvaluator ev(&db->catalog(), &graph, options);
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());
  DATACON_ASSIGN_OR_RETURN(const Relation* rel, ev.Resolve(*range));
  if (stats != nullptr) *stats = ev.stats();
  return *rel;
}

EvalOptions WithThreads(FixpointStrategy strategy, size_t threads) {
  EvalOptions o;
  o.strategy = strategy;
  o.exec.num_threads = threads;
  return o;
}

/// Every parallel execution must be bit-identical (same SortedTuples) to
/// the serial one, and report the same deterministic statistics: env_count
/// is partition-invariant and `inserted` is counted against the shared
/// output after the merge.
class ThreadCountTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ThreadCountTest, ClosureMatchesSerialBitForBit) {
  size_t threads = GetParam();
  workload::EdgeList g = workload::RandomDigraph(48, 160, 11);
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());

  for (FixpointStrategy strategy :
       {FixpointStrategy::kNaive, FixpointStrategy::kSemiNaive}) {
    EvalStats serial_stats, parallel_stats;
    Result<Relation> serial =
        EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"),
                WithThreads(strategy, 1), &serial_stats);
    Result<Relation> parallel =
        EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"),
                WithThreads(strategy, threads), &parallel_stats);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(serial->SortedTuples(), parallel->SortedTuples());
    EXPECT_EQ(ToPairSet(*parallel), ReferenceClosure(g));
    EXPECT_EQ(serial_stats.iterations, parallel_stats.iterations);
    EXPECT_EQ(serial_stats.tuples_considered,
              parallel_stats.tuples_considered);
    EXPECT_EQ(serial_stats.tuples_inserted, parallel_stats.tuples_inserted);
  }
}

TEST_P(ThreadCountTest, MutualRecursionMatchesSerialBitForBit) {
  size_t threads = GetParam();
  Database db;
  ASSERT_TRUE(workload::SetupCadScene(&db, 24, 60, 60, 3).ok());

  RangePtr range = Constructed(Rel("Infront"), "ahead", {Rel("Ontop")});
  Result<Relation> serial =
      EvalRaw(&db, range, WithThreads(FixpointStrategy::kSemiNaive, 1));
  Result<Relation> parallel =
      EvalRaw(&db, range, WithThreads(FixpointStrategy::kSemiNaive, threads));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial->SortedTuples(), parallel->SortedTuples());
}

TEST_P(ThreadCountTest, QuantifierRangesResolveInsideWorkers) {
  // A recursive reference inside SOME exercises the snapshot resolver: the
  // workers must see the pre-materialized relation, never the engine's
  // cache-mutating resolver.
  size_t threads = GetParam();
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  workload::EdgeList g = workload::RandomDigraph(24, 64, 5);
  ASSERT_TRUE(workload::LoadEdges(&db, "E", g).ok());

  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch(
           {FieldRef("f", "src"), FieldRef("g", "dst")},
           {Each("f", Rel("Rel")), Each("g", Rel("Rel"))},
           Some("m", Constructed(Rel("Rel"), "c"),
                And({Eq(FieldRef("f", "dst"), FieldRef("m", "src")),
                     Eq(FieldRef("m", "dst"), FieldRef("g", "src"))})))});
  auto decl = std::make_shared<ConstructorDecl>(
      "c", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "edge", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());

  Result<Relation> serial = EvalRaw(
      &db, Constructed(Rel("E"), "c"),
      WithThreads(FixpointStrategy::kSemiNaive, 1));
  Result<Relation> parallel = EvalRaw(
      &db, Constructed(Rel("E"), "c"),
      WithThreads(FixpointStrategy::kSemiNaive, threads));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial->SortedTuples(), parallel->SortedTuples());
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(FixpointParallel, ZeroMeansHardwareConcurrency) {
  Database db;
  workload::EdgeList g = workload::RandomDigraph(32, 96, 9);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  Result<Relation> r =
      EvalRaw(&db, Constructed(Rel("g_E"), "g_tc"),
              WithThreads(FixpointStrategy::kSemiNaive, 0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ToPairSet(*r), ReferenceClosure(g));
}

TEST(FixpointParallel, KeyViolationSurvivesParallelMerge) {
  // A key-violating construction must fail identically whether the
  // conflicting tuples are derived by one worker or merged from two.
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.DefineRelationType(
                    "keyed", Schema({{"src", ValueType::kInt},
                                     {"dst", ValueType::kInt}},
                                    {0}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        db.Insert("E", Tuple({Value::Int(i % 20), Value::Int(i)})).ok());
  }

  auto body = Union({IdentityBranch("r", Rel("Rel"), True())});
  auto decl = std::make_shared<ConstructorDecl>(
      "copy", FormalRelation{"Rel", "edge"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "keyed", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());

  for (size_t threads : {size_t{1}, size_t{4}}) {
    Result<Relation> r =
        EvalRaw(&db, Constructed(Rel("E"), "copy"),
                WithThreads(FixpointStrategy::kSemiNaive, threads));
    EXPECT_EQ(r.status().code(), StatusCode::kKeyViolation)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace datacon
