// The same-generation query — the deductive-database classic that is
// recursive but NOT a transitive closure, so the capture rule must not
// fire and the generic fixpoint engines carry it alone.
//
//   sg(x, y) :- up(x, p), up(y, p).                      (same parent)
//   sg(x, y) :- up(x, px), up(y, py), sg(px, py).        (parents same gen)
//
// On a tree, sg(x, y) holds exactly when x and y have the same depth.

#include <gtest/gtest.h>

#include <map>

#include "ast/builder.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

/// Declares `up` edges (child -> parent) and the same_gen constructor.
Status SetupSameGeneration(Database* db, const workload::EdgeList& tree) {
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "uprel",
      Schema({{"child", ValueType::kInt}, {"parent", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "pairrel", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("Up", "uprel"));
  // Tree edges are parent -> child; `up` reverses them.
  for (const auto& [parent, child] : tree.edges) {
    DATACON_RETURN_IF_ERROR(
        db->Insert("Up", Tuple({Value::Int(child), Value::Int(parent)})));
  }
  auto body = Union(
      {MakeBranch({FieldRef("u", "child"), FieldRef("v", "child")},
                  {Each("u", Rel("Rel")), Each("v", Rel("Rel"))},
                  Eq(FieldRef("u", "parent"), FieldRef("v", "parent"))),
       MakeBranch({FieldRef("u", "child"), FieldRef("v", "child")},
                  {Each("u", Rel("Rel")), Each("v", Rel("Rel")),
                   Each("s", Constructed(Rel("Rel"), "same_gen"))},
                  And({Eq(FieldRef("u", "parent"), FieldRef("s", "x")),
                       Eq(FieldRef("s", "y"), FieldRef("v", "parent"))}))});
  return db->DefineConstructor(std::make_shared<ConstructorDecl>(
      "same_gen", FormalRelation{"Rel", "uprel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "pairrel",
      body));
}

/// Node depths of a parent->child edge list rooted at 0.
std::map<int, int> Depths(const workload::EdgeList& tree) {
  std::map<int, int> depth;
  depth[0] = 0;
  // Edges are emitted parents-first by KaryTree, so one pass suffices.
  for (const auto& [parent, child] : tree.edges) {
    depth[child] = depth[parent] + 1;
  }
  return depth;
}

class SameGenerationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SameGenerationTest, MatchesDepthEquality) {
  auto [depth_limit, fanout] = GetParam();
  workload::EdgeList tree = workload::KaryTree(depth_limit, fanout);
  std::map<int, int> depth = Depths(tree);

  for (FixpointStrategy strategy :
       {FixpointStrategy::kNaive, FixpointStrategy::kSemiNaive}) {
    DatabaseOptions options;
    options.eval.strategy = strategy;
    Database db(options);
    ASSERT_TRUE(SetupSameGeneration(&db, tree).ok());

    Result<Relation> sg = db.EvalRange(Constructed(Rel("Up"), "same_gen"));
    ASSERT_TRUE(sg.ok()) << sg.status().ToString();

    // Expected: all pairs of non-root nodes with equal depth.
    size_t expected = 0;
    std::map<int, int> per_depth;
    for (const auto& [node, d] : depth) {
      if (node != 0) ++per_depth[d];
    }
    for (const auto& [d, count] : per_depth) {
      (void)d;
      expected += static_cast<size_t>(count) * static_cast<size_t>(count);
    }
    EXPECT_EQ(sg->size(), expected);
    for (const Tuple& t : sg->tuples()) {
      EXPECT_EQ(depth[static_cast<int>(t.value(0).AsInt())],
                depth[static_cast<int>(t.value(1).AsInt())]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trees, SameGenerationTest,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(3, 2),
                                           std::make_tuple(2, 3),
                                           std::make_tuple(4, 2)));

TEST(SameGeneration, CaptureRuleDoesNotFire) {
  Database db;
  ASSERT_TRUE(SetupSameGeneration(&db, workload::KaryTree(3, 2)).ok());
  Result<std::string> plan = db.Explain(Constructed(Rel("Up"), "same_gen"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("capture rule"), std::string::npos);
  EXPECT_NE(plan->find("semi-naive fixpoint"), std::string::npos);
}

TEST(SameGeneration, SymmetricAndReflexiveOnSiblings) {
  Database db;
  ASSERT_TRUE(SetupSameGeneration(&db, workload::KaryTree(2, 2)).ok());
  Result<Relation> sg = db.EvalRange(Constructed(Rel("Up"), "same_gen"));
  ASSERT_TRUE(sg.ok());
  for (const Tuple& t : sg->tuples()) {
    EXPECT_TRUE(sg->Contains(Tuple({t.value(1), t.value(0)})));
    EXPECT_TRUE(sg->Contains(Tuple({t.value(0), t.value(0)})));
  }
}

}  // namespace
}  // namespace datacon
