// Pinned end-to-end guarantee of the materialization cache: evaluation
// with PRAGMA CACHE = ON must produce bit-identical query results and
// deterministic EvalStats to CACHE = OFF — reuse may only skip work,
// never change answers or reported logical counters. Also pins the
// counter semantics (hit / delta-maintenance / invalidation / eviction)
// against the live Database + Interpreter stack.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ast/builder.h"
#include "core/database.h"
#include "lang/interpreter.h"
#include "workload/generators.h"

namespace datacon {
namespace {

/// Canonical form of a relation: sorted tuple renderings.
std::vector<std::string> Canonical(const Relation& rel) {
  std::vector<std::string> out;
  for (const Tuple& t : rel.tuples()) {
    std::string row;
    for (const Value& v : t.values()) row += v.ToString() + "|";
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The deterministic EvalStats fields as one comparable string (the two
/// execution-detail fields legitimately vary with scheduling and are
/// excluded, mirroring ProfileNode::CounterDigest).
std::string StatsDigest(const EvalStats& s) {
  return "iterations=" + std::to_string(s.iterations) +
         " considered=" + std::to_string(s.tuples_considered) +
         " inserted=" + std::to_string(s.tuples_inserted) +
         " outer=" + std::to_string(s.outer_tuples) +
         " specialized=" + std::to_string(s.specialized_branches) +
         " pruned=" + std::to_string(s.seed_tuples_pruned);
}

struct RunOutcome {
  std::vector<std::vector<std::string>> results;
  std::string last_stats_digest;
};

/// Executes `source` from scratch with the cache on or off and
/// canonicalizes every QUERY result.
RunOutcome RunScript(const std::string& source, bool cache,
                     bool use_capture_rules = true) {
  DatabaseOptions options;
  options.cache = cache;
  options.use_capture_rules = use_capture_rules;
  Database db(options);
  Interpreter interp(&db);
  Status s = interp.Execute(source);
  EXPECT_TRUE(s.ok()) << s.ToString();
  RunOutcome outcome;
  for (const Interpreter::QueryResult& r : interp.results()) {
    outcome.results.push_back(Canonical(r.relation));
  }
  outcome.last_stats_digest = StatsDigest(db.last_stats());
  return outcome;
}

/// The recursive `ahead` closure over a six-tuple Infront chain — the
/// standard workload of the ON/OFF and counter tests.
constexpr const char* kAheadProgram = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
VAR Infront: infrontrel;

CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.head
END ahead;

INSERT INTO Infront <"vase", "table">, <"table", "chair">, <"chair", "wall">;
INSERT INTO Infront <"lamp", "desk">, <"desk", "rug">, <"rug", "floor">;

QUERY Infront {ahead};
)";

TEST(CacheSemantics, EveryExampleProgramIsBitIdentical) {
  const std::filesystem::path dir(DATACON_EXAMPLES_DIR);
  size_t examples = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dbpl") continue;
    ++examples;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    RunOutcome on = RunScript(buffer.str(), /*cache=*/true);
    RunOutcome off = RunScript(buffer.str(), /*cache=*/false);
    EXPECT_EQ(on.results, off.results) << entry.path();
    EXPECT_EQ(on.last_stats_digest, off.last_stats_digest) << entry.path();
  }
  // The corpus exists and was actually exercised.
  EXPECT_GE(examples, 5u);
}

TEST(CacheSemantics, ExamplesAlsoMatchWithoutCaptureRules) {
  // Capture rules answer closure-shaped constructors before the generic
  // fixpoint; turning them off drives every example through the cached
  // component path too.
  const std::filesystem::path dir(DATACON_EXAMPLES_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dbpl") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    RunOutcome on =
        RunScript(buffer.str(), /*cache=*/true, /*use_capture_rules=*/false);
    RunOutcome off =
        RunScript(buffer.str(), /*cache=*/false, /*use_capture_rules=*/false);
    EXPECT_EQ(on.results, off.results) << entry.path();
    EXPECT_EQ(on.last_stats_digest, off.last_stats_digest) << entry.path();
  }
}

TEST(CacheSemantics, RepeatQueryIsAHitWithReplayedStats) {
  DatabaseOptions options;
  options.use_capture_rules = false;  // exercise the component cache path
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  std::string cold_digest = StatsDigest(db.last_stats());
  ASSERT_EQ(db.mat_cache().stats().hits, 0);
  EXPECT_GE(db.mat_cache().stats().misses, 1);

  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_EQ(db.mat_cache().stats().hits, 1);
  EXPECT_EQ(db.last_cache_stats().hits, 1);
  ASSERT_EQ(interp.results().size(), 2u);
  EXPECT_EQ(Canonical(interp.results()[0].relation),
            Canonical(interp.results()[1].relation));
  // The hit replays the cold run's logical counters verbatim.
  EXPECT_EQ(StatsDigest(db.last_stats()), cold_digest);
}

TEST(CacheSemantics, CaptureClosuresAreCachedToo) {
  Database db;  // capture rules on (default)
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_GE(db.mat_cache().stats().hits, 1);
  ASSERT_EQ(interp.results().size(), 2u);
  EXPECT_EQ(Canonical(interp.results()[0].relation),
            Canonical(interp.results()[1].relation));
}

TEST(CacheSemantics, InsertChurnIsDeltaMaintainedAndMatchesRecompute) {
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());

  // Insert-only churn: extend the vase chain past the wall.
  const char* churn =
      "INSERT INTO Infront <\"wall\", \"door\">;\n"
      "QUERY Infront {ahead};\n";
  ASSERT_TRUE(interp.Execute(churn).ok());
  EXPECT_EQ(db.mat_cache().stats().delta_maintained, 1);
  EXPECT_EQ(db.mat_cache().stats().hits, 0);
  EXPECT_EQ(db.last_cache_stats().delta_maintained, 1);

  // The maintained result is bit-identical to a cold full recompute.
  RunOutcome cold = RunScript(std::string(kAheadProgram) + churn,
                              /*cache=*/false, /*use_capture_rules=*/false);
  ASSERT_EQ(interp.results().size(), 2u);
  EXPECT_EQ(Canonical(interp.results()[1].relation), cold.results.back());

  // And the refreshed entry serves the next repeat as a plain hit.
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_EQ(db.mat_cache().stats().hits, 1);
  EXPECT_EQ(Canonical(interp.results()[2].relation), cold.results.back());
}

TEST(CacheSemantics, EraseChurnInvalidatesAndRecomputes) {
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());

  Relation* infront = db.GetMutableRelation("Infront").value();
  ASSERT_TRUE(infront->Erase(
      Tuple({Value::String("chair"), Value::String("wall")})));

  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_GE(db.mat_cache().stats().invalidations, 1);
  EXPECT_EQ(db.mat_cache().stats().delta_maintained, 0);
  EXPECT_EQ(db.mat_cache().stats().hits, 0);

  // The recomputed answer reflects the erase (chair/wall pairs gone).
  RunOutcome cold = RunScript(
      "TYPE parttype = STRING;\n"
      "TYPE infrontrel = RELATION OF RECORD front, back: parttype END;\n"
      "TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;\n"
      "VAR Infront: infrontrel;\n"
      "CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.front, b.tail> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {ahead}: f.back = b.head\n"
      "END ahead;\n"
      "INSERT INTO Infront <\"vase\", \"table\">, <\"table\", \"chair\">;\n"
      "INSERT INTO Infront <\"lamp\", \"desk\">, <\"desk\", \"rug\">,\n"
      "                    <\"rug\", \"floor\">;\n"
      "QUERY Infront {ahead};\n",
      /*cache=*/false, /*use_capture_rules=*/false);
  ASSERT_EQ(interp.results().size(), 2u);
  EXPECT_EQ(Canonical(interp.results()[1].relation), cold.results.back());
}

TEST(CacheSemantics, PragmaCacheOffBypassesTheCache) {
  DatabaseOptions options;
  options.use_capture_rules = false;
  options.cache = false;
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_EQ(db.mat_cache().stats().hits, 0);
  EXPECT_EQ(db.mat_cache().stats().misses, 0);
  EXPECT_EQ(db.mat_cache().size(), 0u);

  // PRAGMA CACHE = ON starts filling it; the same pragma contract as the
  // other toggles (only 0/1 accepted).
  ASSERT_TRUE(interp
                  .Execute("PRAGMA CACHE = ON;\n"
                           "QUERY Infront {ahead};\n"
                           "QUERY Infront {ahead};")
                  .ok());
  EXPECT_EQ(db.mat_cache().stats().hits, 1);
  EXPECT_EQ(interp.Execute("PRAGMA CACHE = 2;").code(),
            StatusCode::kInvalidArgument);
  // A negative capacity is rejected upstream (the pragma grammar only
  // admits non-negative literals).
  EXPECT_FALSE(interp.Execute("PRAGMA CACHE_CAPACITY = -1;").ok());
}

TEST(CacheSemantics, CapacityOneAlternationEvictsLru) {
  DatabaseOptions options;
  options.use_capture_rules = false;
  options.cache_capacity = 1;
  Database db(options);
  Interpreter interp(&db);
  // Two distinct closures alternate through a one-entry cache: every
  // lookup misses and each insert evicts the other entry.
  std::string program(kAheadProgram);
  program +=
      "CONSTRUCTOR behind FOR Rel: infrontrel (): aheadrel;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.front, b.tail> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {behind}: f.back = b.head\n"
      "END behind;\n"
      "QUERY Infront {behind};\n"
      "QUERY Infront {ahead};\n"
      "QUERY Infront {behind};\n";
  ASSERT_TRUE(interp.Execute(program).ok());
  EXPECT_EQ(db.mat_cache().size(), 1u);
  EXPECT_EQ(db.mat_cache().stats().hits, 0);
  EXPECT_GE(db.mat_cache().stats().evictions, 3);

  // Raising the capacity stops the thrash: both closures now fit. The
  // surviving "behind" entry hits immediately; "ahead" refills once and
  // hits thereafter.
  ASSERT_TRUE(interp
                  .Execute("PRAGMA CACHE_CAPACITY = 8;\n"
                           "QUERY Infront {ahead};\n"
                           "QUERY Infront {behind};\n"
                           "QUERY Infront {ahead};\n"
                           "QUERY Infront {behind};")
                  .ok());
  EXPECT_EQ(db.mat_cache().stats().hits, 3);
  EXPECT_EQ(db.mat_cache().size(), 2u);
}

TEST(CacheSemantics, ExplainAnalyzeReportsCacheCounters) {
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  interp.ClearResults();
  ASSERT_TRUE(interp.Execute("EXPLAIN ANALYZE Infront {ahead};").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("cache: 1 hit(s), 0 miss(es)"), std::string::npos)
      << text;
}

TEST(CacheSemantics, PreparedQueriesBypassTheCache) {
  // Parameterized executions must not read or pollute entries — the
  // cached state is keyed on unparameterized component shapes only.
  using namespace build;  // NOLINT: terse AST construction
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(6)).ok());
  CalcExprPtr form = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Param("p")))});
  Result<PreparedQuery> prepared = db.Prepare(form, {{"p", ValueType::kInt}});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->Execute({{"p", Value::Int(0)}}).ok());
  ASSERT_TRUE(prepared->Execute({{"p", Value::Int(3)}}).ok());
  EXPECT_EQ(db.mat_cache().size(), 0u);
  EXPECT_EQ(db.mat_cache().stats().hits, 0);
  EXPECT_EQ(db.mat_cache().stats().misses, 0);
}

}  // namespace
}  // namespace datacon
