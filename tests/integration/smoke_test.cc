#include <gtest/gtest.h>

#include "ast/builder.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using build::Constructed;
using build::Rel;

TEST(Smoke, TransitiveClosureOfChain) {
  for (bool capture : {false, true}) {
    for (FixpointStrategy strategy :
         {FixpointStrategy::kNaive, FixpointStrategy::kSemiNaive}) {
      DatabaseOptions options;
      options.use_capture_rules = capture;
      options.eval.strategy = strategy;
      Database db(options);
      ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(5)).ok());

      Result<Relation> closure =
          db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
      ASSERT_TRUE(closure.ok()) << closure.status().ToString();
      // Chain 0->1->2->3->4: closure has n(n-1)/2 = 10 pairs.
      EXPECT_EQ(closure->size(), 10u)
          << "capture=" << capture << " strategy=" << static_cast<int>(strategy);
      EXPECT_TRUE(closure->Contains(Tuple({Value::Int(0), Value::Int(4)})));
      EXPECT_FALSE(closure->Contains(Tuple({Value::Int(4), Value::Int(0)})));
    }
  }
}

TEST(Smoke, MutualRecursionCadScene) {
  Database db;
  ASSERT_TRUE(workload::SetupCadScene(&db, 10, 0, 0, 1).ok());
  // The paper's worked example: a vase on a table in front of a chair —
  // the vase is ahead of the chair.
  auto part = [](const char* s) { return Value::String(s); };
  ASSERT_TRUE(db.Insert("Ontop", Tuple({part("vase"), part("table")})).ok());
  ASSERT_TRUE(db.Insert("Infront", Tuple({part("table"), part("chair")})).ok());

  Result<Relation> above =
      db.EvalRange(Constructed(Rel("Ontop"), "above", {Rel("Infront")}));
  ASSERT_TRUE(above.ok()) << above.status().ToString();
  EXPECT_TRUE(above->Contains(Tuple({part("vase"), part("table")})));
  EXPECT_TRUE(above->Contains(Tuple({part("vase"), part("chair")})));

  Result<Relation> ahead =
      db.EvalRange(Constructed(Rel("Infront"), "ahead", {Rel("Ontop")}));
  ASSERT_TRUE(ahead.ok()) << ahead.status().ToString();
  EXPECT_TRUE(ahead->Contains(Tuple({part("table"), part("chair")})));
}

}  // namespace
}  // namespace datacon
