// Edge-path coverage across module boundaries: correlated selector
// arguments, stratified negation through universal quantification,
// EXPLAIN's physical-plan section, and surface-syntax corners.

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "core/database.h"
#include "lang/interpreter.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(EdgeCases, CorrelatedSelectorArgumentIsRejectedAtEvaluation) {
  // A selector argument referencing a branch variable type-checks (the
  // scope rules allow it) but range materialization requires constants;
  // the evaluation reports kUnsupported with a clear message.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  auto sel = std::make_shared<SelectorDecl>(
      "from", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalScalar>{{"n", ValueType::kInt}}, "r",
      Eq(FieldRef("r", "src"), Param("n")));
  ASSERT_TRUE(db.DefineSelector(sel).ok());

  CalcExprPtr query = Union({MakeBranch(
      {FieldRef("a", "src"), FieldRef("b", "dst")},
      {Each("a", Rel("g_E")),
       Each("b", Selected(Rel("g_E"), "from", {FieldRef("a", "dst")}))},
      True())});
  Result<Relation> r = db.EvalQuery(query);
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(r.status().message().find("not a constant"), std::string::npos);
}

TEST(EdgeCases, StratifiedNegationThroughUniversalQuantifier) {
  // sinks-only view: edges whose target has no outgoing path — expressed
  // with ALL over the closure (one ALL = odd parity, stratified OK).
  DatabaseOptions options;
  options.allow_stratified_negation = true;
  Database db(options);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  // to_sink = {r in Rel : ALL c IN Rel{g_tc} (c.src # r.dst)}.
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"),
      All("c", Constructed(Rel("Rel"), "g_tc"),
          Ne(FieldRef("c", "src"), FieldRef("r", "dst"))))});
  auto decl = std::make_shared<ConstructorDecl>(
      "to_sink", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{},
      "g_edgerel", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());
  Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "to_sink"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Only (2,3): node 3 is the sink of chain 0->1->2->3.
  EXPECT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->Contains(Tuple({Value::Int(2), Value::Int(3)})));
}

TEST(EdgeCases, ExplainShowsPhysicalBranchPlans) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  Result<std::string> text = db.Explain(Constructed(Rel("g_E"), "g_tc"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("level 3 (physical branch plans)"), std::string::npos);
  EXPECT_NE(text->find("probe(b IN g_E {g_tc} on src = f.dst)"),
            std::string::npos);
  EXPECT_NE(text->find("project<f.src, b.dst>"), std::string::npos);

  // With hash joins ablated, the same plan degrades to scan+filter.
  db.options().eval.exec.use_hash_joins = false;
  text = db.Explain(Constructed(Rel("g_E"), "g_tc"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("probe("), std::string::npos);
  EXPECT_NE(text->find("filter(f.dst = b.src)"), std::string::npos);
}

TEST(EdgeCases, DivAndModParseAndEvaluate) {
  Database db;
  Interpreter interp(&db);
  Status s = interp.Execute(R"(
TYPE t = RELATION OF RECORD n: INTEGER END;
VAR R: t;
INSERT INTO R <1>, <2>, <3>, <4>, <5>, <6>;
QUERY {EACH r IN R: r.n MOD 2 = 0};
QUERY {EACH r IN R: r.n DIV 2 = 1};
)");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(interp.results()[0].relation.size(), 3u);  // 2, 4, 6
  EXPECT_EQ(interp.results()[1].relation.size(), 2u);  // 2, 3
}

TEST(EdgeCases, BooleanFieldsEndToEnd) {
  Database db;
  Interpreter interp(&db);
  Status s = interp.Execute(R"(
TYPE t = RELATION OF RECORD name: STRING; active: BOOLEAN END;
VAR R: t;
INSERT INTO R <"a", TRUE>, <"b", FALSE>, <"c", TRUE>;
QUERY {EACH r IN R: r.active = TRUE};
)");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(interp.results()[0].relation.size(), 2u);
}

TEST(EdgeCases, MultipleIndependentRecursiveComponentsInOneQuery) {
  // One query referencing two unrelated closures: two singleton cyclic
  // components, evaluated independently in dependency order.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "a", workload::Chain(4)).ok());
  ASSERT_TRUE(workload::SetupClosure(&db, "b", workload::Chain(3)).ok());
  db.options().use_capture_rules = false;
  CalcExprPtr query = Union({MakeBranch(
      {FieldRef("x", "src"), FieldRef("y", "dst")},
      {Each("x", Constructed(Rel("a_E"), "a_tc")),
       Each("y", Constructed(Rel("b_E"), "b_tc"))},
      Eq(FieldRef("x", "dst"), FieldRef("y", "src")))});
  Result<Relation> r = db.EvalQuery(query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // a-pairs ending at {1,2} join b-pairs starting there: ends at 1 (1) or
  // 2 (2) times pairs from 1 (1: (1,2)) or 2... compute: a_tc over chain4
  // = {(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)}; b_tc over chain3 =
  // {(0,1),(0,2),(1,2)}. Join on a.dst = b.src: a.dst=1 x b.src=1 -> 1*1,
  // a.dst=2 x b.src=2 -> none (b has no src 2)... b.src values {0,1}.
  // a.dst=1: (0,1),(1,... wait (0,1) only... a.dst=1 tuples: (0,1); pairs
  // with b.src=1: (1,2): product 1. So result {(0,2)}.
  EXPECT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->Contains(Tuple({Value::Int(0), Value::Int(2)})));
}

TEST(EdgeCases, SelectorChainOrderMatters) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(5)).ok());
  auto src_is = std::make_shared<SelectorDecl>(
      "src_is", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalScalar>{{"n", ValueType::kInt}}, "r",
      Eq(FieldRef("r", "src"), Param("n")));
  auto dst_over = std::make_shared<SelectorDecl>(
      "dst_over", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalScalar>{{"n", ValueType::kInt}}, "r",
      Cmp(CompareOp::kGt, FieldRef("r", "dst"), Param("n")));
  ASSERT_TRUE(db.DefineSelector(src_is).ok());
  ASSERT_TRUE(db.DefineSelector(dst_over).ok());
  // Selector before the closure restricts the edges; after, the results.
  Result<Relation> before = db.EvalRange(Constructed(
      Selected(Rel("g_E"), "src_is", {Int(0)}), "g_tc"));
  Result<Relation> after = db.EvalRange(Selected(
      Constructed(Rel("g_E"), "g_tc"), "src_is", {Int(0)}));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->size(), 1u);  // closure of the single edge (0,1)
  EXPECT_EQ(after->size(), 4u);   // (0,1),(0,2),(0,3),(0,4)
}

TEST(EdgeCases, AssignUnionCompatibleDifferentFieldNames) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "ab", Schema({{"a", ValueType::kInt},
                                  {"b", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.DefineRelationType(
                    "xy", Schema({{"x", ValueType::kInt},
                                  {"y", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("R", "ab").ok());
  ASSERT_TRUE(db.CreateRelation("S", "xy").ok());
  ASSERT_TRUE(db.Insert("S", Tuple({Value::Int(1), Value::Int(2)})).ok());
  // Positional compatibility suffices for assignment (paper's identity
  // semantics).
  Result<Relation> s = db.EvalRange(Rel("S"));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(db.Assign("R", *s).ok());
  EXPECT_EQ(db.GetRelation("R").value()->size(), 1u);
}

}  // namespace
}  // namespace datacon
