// Pinned end-to-end guarantee of proof-carrying typed evaluation: for every
// example program, running with PRAGMA TYPECHECK = ON (typed-proven fast
// path) must produce bit-identical query results AND identical EvalStats to
// TYPECHECK = OFF (checked interpreter) — eliding the per-tuple type tests
// may only skip dispatch, never change answers or the amount of work
// counted. The reachability tests pin the soundness contract itself: a
// catalog admitted entirely under typechecking can never hit an eval-time
// type error, and the ill-typed definitions that could are rejected at
// define time unless TYPECHECK is off.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "lang/interpreter.h"

namespace datacon {
namespace {

/// Canonical form of a relation: sorted tuple renderings.
std::vector<std::string> Canonical(const Relation& rel) {
  std::vector<std::string> out;
  for (const Tuple& t : rel.tuples()) {
    std::string row;
    for (const Value& v : t.values()) row += v.ToString() + "|";
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectStatsEqual(const EvalStats& a, const EvalStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.tuples_considered, b.tuples_considered) << what;
  EXPECT_EQ(a.tuples_inserted, b.tuples_inserted) << what;
  EXPECT_EQ(a.outer_tuples, b.outer_tuples) << what;
  EXPECT_EQ(a.index_builds, b.index_builds) << what;
  EXPECT_EQ(a.index_probes, b.index_probes) << what;
  EXPECT_EQ(a.specialized_branches, b.specialized_branches) << what;
  EXPECT_EQ(a.seed_tuples_pruned, b.seed_tuples_pruned) << what;
}

struct RunOutcome {
  std::vector<std::vector<std::string>> results;
  EvalStats stats;
  bool last_typed_proven = false;
};

/// Executes `source` from scratch with typechecking on or off and
/// canonicalizes every QUERY result.
RunOutcome RunScript(const std::string& source, bool typecheck) {
  DatabaseOptions options;
  options.typecheck = typecheck;
  Database db(options);
  Interpreter interp(&db);
  Status s = interp.Execute(source);
  EXPECT_TRUE(s.ok()) << s.ToString();
  RunOutcome outcome;
  for (const Interpreter::QueryResult& r : interp.results()) {
    outcome.results.push_back(Canonical(r.relation));
  }
  outcome.stats = db.last_stats();
  outcome.last_typed_proven = db.last_typed_proven();
  return outcome;
}

constexpr const char* kBoundedPaths = R"(
TYPE place = STRING;
TYPE hoprel = RELATION OF RECORD src, dst: place; len: INTEGER END;
VAR Hop: hoprel;

CONSTRUCTOR routes FOR Rel: hoprel (): hoprel;
BEGIN EACH r IN Rel: TRUE,
      <f.src, b.dst, f.len + b.len> OF EACH f IN Rel,
      EACH b IN Rel {routes}: f.dst = b.src AND f.len + b.len < 40
END routes;

INSERT INTO Hop <"dock", "gate", 5>, <"gate", "hall", 7>, <"hall", "vault", 9>;

QUERY Hop {routes};
)";

constexpr const char* kIllTypedCtor = R"(
TYPE itemrel = RELATION OF RECORD name: STRING; qty: INTEGER END;
VAR Item: itemrel;

CONSTRUCTOR mislabeled FOR Rel: itemrel (): itemrel;
BEGIN <r.qty, r.qty> OF EACH r IN Rel: TRUE END mislabeled;
)";

TEST(TypedSemantics, ProvenRunIsBitIdenticalToChecked) {
  RunOutcome on = RunScript(kBoundedPaths, /*typecheck=*/true);
  RunOutcome off = RunScript(kBoundedPaths, /*typecheck=*/false);
  ASSERT_EQ(on.results.size(), 1u);
  EXPECT_EQ(on.results, off.results);
  // Base hops plus the bounded compositions: dock-hall(12), gate-vault(16),
  // dock-vault(21).
  EXPECT_EQ(on.results[0].size(), 6u);
  ExpectStatsEqual(on.stats, off.stats, "bounded paths");
  // The clean catalog runs proven under typechecking, checked without.
  EXPECT_TRUE(on.last_typed_proven);
  EXPECT_FALSE(off.last_typed_proven);
}

TEST(TypedSemantics, EveryExampleProgramIsBitIdentical) {
  const std::filesystem::path dir(DATACON_EXAMPLES_DIR);
  size_t examples = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dbpl") continue;
    ++examples;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    RunOutcome on = RunScript(buffer.str(), /*typecheck=*/true);
    RunOutcome off = RunScript(buffer.str(), /*typecheck=*/false);
    EXPECT_EQ(on.results, off.results) << entry.path();
    ExpectStatsEqual(on.stats, off.stats, entry.path().string());
    // Every shipped example type-checks cleanly, so the last QUERY of each
    // ran typed-proven (examples without a QUERY never set the flag).
    if (buffer.str().find("QUERY") != std::string::npos) {
      EXPECT_TRUE(on.last_typed_proven) << entry.path();
      EXPECT_FALSE(off.last_typed_proven) << entry.path();
    }
  }
  // The corpus exists and was actually exercised (bad/ is skipped: this
  // iteration is non-recursive).
  EXPECT_GE(examples, 6u);
}

TEST(TypedSemantics, IllTypedDefinitionIsRejectedAtDefineTime) {
  Database db;
  Interpreter interp(&db);
  Status s = interp.Execute(kIllTypedCtor);
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  // The rejected group was rolled back: the catalog stays clean and proven.
  EXPECT_TRUE(db.catalog_typed_clean());
}

TEST(TypedSemantics, NonBinaryCaptureShapeIsRejectedWithE132) {
  // Level-1 passes this program (every target matches its declared type);
  // only the inference pass sees that the transitive-closure capture shape
  // ranges over a ternary base — the error capture.cc used to raise at
  // evaluation time now rejects the definition, naming E132.
  constexpr const char* kTernaryTc = R"(
TYPE widerel = RELATION OF RECORD a, b, c: INTEGER END;
TYPE edge2 = RELATION OF RECORD src, dst: INTEGER END;
VAR W: widerel;

CONSTRUCTOR tc3 FOR Rel: widerel (): edge2;
BEGIN <r.a, r.b> OF EACH r IN Rel: TRUE,
      <f.a, t.dst> OF EACH f IN Rel, EACH t IN Rel {tc3}: f.b = t.src
END tc3;
)";
  Database db;
  Interpreter interp(&db);
  Status s = interp.Execute(kTernaryTc);
  EXPECT_EQ(s.code(), StatusCode::kTypeError) << s.ToString();
  EXPECT_NE(s.ToString().find("E132"), std::string::npos) << s.ToString();
  EXPECT_TRUE(db.catalog_typed_clean());
}

TEST(TypedSemantics, TypecheckOffAdmitsAndDemotesToChecked) {
  // With TYPECHECK off the ill-typed constructor defines fine; evaluation
  // falls back to the checked interpreter, which reports the type error at
  // the only point left: per-tuple evaluation.
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute("PRAGMA TYPECHECK = OFF;").ok());
  ASSERT_TRUE(interp.Execute(kIllTypedCtor).ok());
  EXPECT_FALSE(db.catalog_typed_clean());

  ASSERT_TRUE(interp.Execute("INSERT INTO Item <\"bolt\", 12>;").ok());
  Status s = interp.Execute("QUERY Item {mislabeled};");
  EXPECT_EQ(s.code(), StatusCode::kTypeError) << s.ToString();
  EXPECT_FALSE(db.last_typed_proven());

  // Turning the pragma back on cannot retroactively prove the demoted
  // catalog: admission happened unchecked.
  ASSERT_TRUE(interp.Execute("PRAGMA TYPECHECK = ON;").ok());
  EXPECT_FALSE(db.catalog_typed_clean());
}

TEST(TypedSemantics, RuntimeTypeErrorNeedsFilterNotJoin) {
  // The checked interpreter's kTypeError surfaces through a single-binding
  // filter comparison (a real EvalPred walk); the identity query around it
  // passes schema inference because it never descends into the body.
  constexpr const char* kFilterMismatch = R"(
PRAGMA TYPECHECK = OFF;
TYPE itemrel = RELATION OF RECORD name: STRING; qty: INTEGER END;
VAR Item: itemrel;

CONSTRUCTOR never FOR Rel: itemrel (): itemrel;
BEGIN EACH r IN Rel: r.name = r.qty END never;

INSERT INTO Item <"bolt", 12>;
)";
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kFilterMismatch).ok());
  Status s = interp.Execute("QUERY Item {never};");
  EXPECT_EQ(s.code(), StatusCode::kTypeError) << s.ToString();
  EXPECT_NE(s.ToString().find("comparison across types"), std::string::npos)
      << s.ToString();
}

TEST(TypedSemantics, PragmaTypecheckValidatesItsValue) {
  Database db;
  Interpreter interp(&db);
  EXPECT_TRUE(interp.Execute("PRAGMA TYPECHECK = OFF;").ok());
  EXPECT_TRUE(interp.Execute("PRAGMA TYPECHECK = ON;").ok());
  EXPECT_EQ(interp.Execute("PRAGMA TYPECHECK = 2;").code(),
            StatusCode::kInvalidArgument);
}

TEST(TypedSemantics, ShowSchemasPrintsInferredSchemas) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kBoundedPaths).ok());
  interp.ClearResults();
  ASSERT_TRUE(interp.Execute("SHOW SCHEMAS;").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("SCHEMAS:"), std::string::npos) << text;
  EXPECT_NE(
      text.find("routes: RECORD src: STRING; dst: STRING; len: INTEGER END"),
      std::string::npos)
      << text;
}

TEST(TypedSemantics, ExplainReportsInferredSchemasAndProvenStatus) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kBoundedPaths).ok());
  interp.ClearResults();
  ASSERT_TRUE(interp.Execute("EXPLAIN Hop {routes};").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("level 2 (inferred schemas):"), std::string::npos)
      << text;
  EXPECT_NE(
      text.find("routes: RECORD src: STRING; dst: STRING; len: INTEGER END"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("typed evaluation: proven"), std::string::npos) << text;

  // The same plan under TYPECHECK = OFF reports the checked fallback.
  interp.ClearResults();
  ASSERT_TRUE(interp.Execute("PRAGMA TYPECHECK = OFF;\nEXPLAIN Hop {routes};")
                  .ok());
  ASSERT_EQ(interp.results().size(), 1u);
  EXPECT_NE(interp.results()[0].text.find("typed evaluation: checked"),
            std::string::npos)
      << interp.results()[0].text;
}

TEST(TypedSemantics, UnionSchemaNamesAreBranchOrderIndependent) {
  // Satellite fix: branches disagreeing on a result field name get the
  // deterministic positional name, whichever branch comes first.
  constexpr const char* kPrefix = R"(
TYPE arel = RELATION OF RECORD left, right: INTEGER END;
TYPE brel = RELATION OF RECORD top, bottom: INTEGER END;
VAR A: arel;
VAR B: brel;
INSERT INTO A <1, 2>;
INSERT INTO B <3, 4>;
)";
  for (const char* query :
       {"QUERY {EACH a IN A: TRUE, EACH b IN B: TRUE};",
        "QUERY {EACH b IN B: TRUE, EACH a IN A: TRUE};"}) {
    Database db;
    Interpreter interp(&db);
    ASSERT_TRUE(interp.Execute(std::string(kPrefix) + query).ok());
    ASSERT_EQ(interp.results().size(), 1u);
    const Schema& schema = interp.results()[0].relation.schema();
    ASSERT_EQ(schema.arity(), 2);
    EXPECT_EQ(schema.field(0).name, "c0") << query;
    EXPECT_EQ(schema.field(1).name, "c1") << query;
  }
}

}  // namespace
}  // namespace datacon
