// Failure-injection and stress tests: deep recursion, instantiation
// explosions, iteration bounds, hostile parser input, and unusual values.

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "core/database.h"
#include "lang/parser.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(Robustness, DeepChainFixpoint) {
  // 512 fixpoint rounds, ~131k derived tuples — no stack or memory issues.
  Database db;
  db.options().use_capture_rules = false;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(512)).ok());
  Result<Relation> r =
      db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 512u * 511u / 2u);
  EXPECT_EQ(db.last_stats().iterations, 512u);
}

TEST(Robustness, IterationBoundTripsOnDeepData) {
  Database db;
  db.options().use_capture_rules = false;
  db.options().eval.max_iterations = 10;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(64)).ok());
  Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
  EXPECT_EQ(r.status().code(), StatusCode::kDivergence);
}

TEST(Robustness, InstantiationExplosionIsBounded) {
  // A constructor whose argument grows a selector suffix at each level
  // never closes under substitution; instantiation must stop at its node
  // bound instead of looping.
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  auto sel = std::make_shared<SelectorDecl>(
      "keep", FormalRelation{"Rel", "edge"}, std::vector<FormalScalar>{},
      "r", True());
  ASSERT_TRUE(db.DefineSelector(sel).ok());
  // c FOR Rel (P): body references P{c(Rel[keep])} — each instantiation
  // wraps the argument in one more [keep].
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       IdentityBranch("x",
                      Constructed(Rel("P"), "c",
                                  {Selected(Rel("Rel"), "keep")}),
                      True())});
  auto decl = std::make_shared<ConstructorDecl>(
      "c", FormalRelation{"Rel", "edge"},
      std::vector<FormalRelation>{{"P", "edge"}},
      std::vector<FormalScalar>{}, "edge", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());

  Result<Relation> r =
      db.EvalRange(Constructed(Rel("E"), "c", {Rel("E")}));
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(r.status().message().find("does not close"), std::string::npos);
}

TEST(Robustness, ParserSurvivesHostileInput) {
  const char* inputs[] = {
      "",
      ";",
      "TYPE",
      "TYPE x",
      "TYPE x = RELATION OF RECORD END;",
      "CONSTRUCTOR FOR x;",
      "QUERY {};",
      "QUERY {EACH};",
      "VAR : t;",
      "INSERT INTO;",
      "((((((((((",
      "TYPE t = RELATION OF RECORD a: INTEGER END; VAR R: t; "
      "QUERY {EACH r IN R: r.a = };",
      "\"unterminated",
      "CONSTRUCTOR c FOR Rel: t (): t; BEGIN EACH r IN Rel: TRUE END d;",
  };
  for (const char* input : inputs) {
    Result<Script> script = ParseScript(input);
    if (std::string(input).empty()) {
      EXPECT_TRUE(script.ok());
      continue;
    }
    EXPECT_FALSE(script.ok()) << "accepted: " << input;
    EXPECT_EQ(script.status().code(), StatusCode::kParseError) << input;
  }
}

TEST(Robustness, DeeplyNestedPredicatesParse) {
  std::string pred = "r.a = 1";
  for (int i = 0; i < 200; ++i) pred = "NOT (" + pred + ")";
  std::string source =
      "TYPE t = RELATION OF RECORD a: INTEGER END; VAR R: t; "
      "QUERY {EACH r IN R: " + pred + "};";
  Result<Script> script = ParseScript(source);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
}

TEST(Robustness, WideUnionQuery) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(6)).ok());
  std::vector<BranchPtr> branches;
  for (int i = 0; i < 100; ++i) {
    branches.push_back(IdentityBranch(
        "r" + std::to_string(i), Rel("g_E"),
        Eq(FieldRef("r" + std::to_string(i), "src"), Int(i % 6))));
  }
  Result<Relation> r = db.EvalQuery(Union(std::move(branches)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);  // all edges qualify under some branch
}

TEST(Robustness, EmptyStringAndExtremeValues) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "t", Schema({{"s", ValueType::kString},
                                 {"n", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("R", "t").ok());
  ASSERT_TRUE(db.Insert("R", Tuple({Value::String(""),
                                    Value::Int(INT64_MIN)}))
                  .ok());
  ASSERT_TRUE(db.Insert("R", Tuple({Value::String(std::string(10000, 'x')),
                                    Value::Int(INT64_MAX)}))
                  .ok());
  Result<Relation> r = db.EvalQuery(Union({IdentityBranch(
      "r", Rel("R"), Eq(FieldRef("r", "s"), Str("")))}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(Robustness, SelfLoopGraphClosure) {
  Database db;
  workload::EdgeList g;
  g.node_count = 3;
  g.edges = {{0, 0}, {0, 1}, {1, 1}};
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  for (bool capture : {false, true}) {
    db.options().use_capture_rules = capture;
    Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 3u);
  }
}

TEST(Robustness, DivisionByZeroSurfacesFromQuery) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "t", Schema({{"n", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("R", "t").ok());
  ASSERT_TRUE(db.Insert("R", Tuple({Value::Int(0)})).ok());
  Result<Relation> r = db.EvalQuery(Union({IdentityBranch(
      "r", Rel("R"),
      Eq(Arith(ArithOp::kDiv, Int(1), FieldRef("r", "n")), Int(1)))}));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Robustness, ConstructedRangeAsConstructorArgument) {
  // E{tc} fed as the relation argument of another constructor.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(4)).ok());
  auto body = Union({IdentityBranch("x", Rel("P"), True()),
                     IdentityBranch("y", Rel("Rel"), True())});
  auto decl = std::make_shared<ConstructorDecl>(
      "merge", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalRelation>{{"P", "g_edgerel"}},
      std::vector<FormalScalar>{}, "g_edgerel", body);
  ASSERT_TRUE(db.DefineConstructor(decl).ok());
  Result<Relation> r = db.EvalRange(Constructed(
      Rel("g_E"), "merge", {Constructed(Rel("g_E"), "g_tc")}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 6u);  // closure of chain(4) ∪ edges = closure
}

TEST(Robustness, ChainedConstructorApplications) {
  // E{tc}{tc} — closure of a closure (idempotent).
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(5)).ok());
  Result<Relation> once = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
  Result<Relation> twice = db.EvalRange(
      Constructed(Constructed(Rel("g_E"), "g_tc"), "g_tc"));
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  EXPECT_TRUE(once->SameTuples(*twice));
}

}  // namespace
}  // namespace datacon
