// Pinned end-to-end guarantee of the structured event log: evaluation
// with PRAGMA EVENTS = ON must produce bit-identical query results and
// deterministic EvalStats to EVENTS = OFF — telemetry may only observe,
// never change answers or reported logical counters. Also pins the
// surface behaviour (PRAGMA EVENTS, SHOW EVENTS) and the per-query
// resource attribution against the live Database + Interpreter stack.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ast/builder.h"
#include "core/database.h"
#include "lang/interpreter.h"
#include "workload/generators.h"

namespace datacon {
namespace {

/// Canonical form of a relation: sorted tuple renderings.
std::vector<std::string> Canonical(const Relation& rel) {
  std::vector<std::string> out;
  for (const Tuple& t : rel.tuples()) {
    std::string row;
    for (const Value& v : t.values()) row += v.ToString() + "|";
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The deterministic EvalStats fields as one comparable string.
std::string StatsDigest(const EvalStats& s) {
  return "iterations=" + std::to_string(s.iterations) +
         " considered=" + std::to_string(s.tuples_considered) +
         " inserted=" + std::to_string(s.tuples_inserted) +
         " outer=" + std::to_string(s.outer_tuples) +
         " specialized=" + std::to_string(s.specialized_branches) +
         " pruned=" + std::to_string(s.seed_tuples_pruned);
}

struct RunOutcome {
  std::vector<std::vector<std::string>> results;
  std::string last_stats_digest;
  std::string last_usage_digest;
};

/// Executes `source` from scratch with events on or off and canonicalizes
/// every QUERY result.
RunOutcome RunScript(const std::string& source, bool events) {
  DatabaseOptions options;
  options.events = events;
  Database db(options);
  Interpreter interp(&db);
  Status s = interp.Execute(source);
  EXPECT_TRUE(s.ok()) << s.ToString();
  RunOutcome outcome;
  for (const Interpreter::QueryResult& r : interp.results()) {
    outcome.results.push_back(Canonical(r.relation));
  }
  outcome.last_stats_digest = StatsDigest(db.last_stats());
  outcome.last_usage_digest = db.last_usage().ToText();
  return outcome;
}

constexpr const char* kAheadProgram = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
VAR Infront: infrontrel;

CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.head
END ahead;

INSERT INTO Infront <"vase", "table">, <"table", "chair">, <"chair", "wall">;
INSERT INTO Infront <"lamp", "desk">, <"desk", "rug">, <"rug", "floor">;

QUERY Infront {ahead};
)";

/// The overhead-neutrality acceptance test: every example program produces
/// bit-identical results, EvalStats, AND resource attribution with the
/// event log on vs off.
TEST(EventsSemantics, EveryExampleProgramIsBitIdentical) {
  const std::filesystem::path dir(DATACON_EXAMPLES_DIR);
  size_t examples = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dbpl") continue;
    ++examples;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    RunOutcome on = RunScript(buffer.str(), /*events=*/true);
    RunOutcome off = RunScript(buffer.str(), /*events=*/false);
    EXPECT_EQ(on.results, off.results) << entry.path();
    EXPECT_EQ(on.last_stats_digest, off.last_stats_digest) << entry.path();
    EXPECT_EQ(on.last_usage_digest, off.last_usage_digest) << entry.path();
  }
  // The corpus exists and was actually exercised.
  EXPECT_GE(examples, 5u);
}

TEST(EventsSemantics, QueriesEmitStartAndFinishEvents) {
  DatabaseOptions options;
  options.events = true;
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  std::vector<Event> events = db.events().Events();
  ASSERT_FALSE(events.empty());
  size_t starts = 0, finishes = 0;
  for (const Event& e : events) {
    if (e.type == "query.start") ++starts;
    if (e.type == "query.finish") ++finishes;
  }
  EXPECT_GE(starts, 1u);
  EXPECT_EQ(starts, finishes);
  // query.finish carries the resource attribution.
  for (const Event& e : events) {
    if (e.type != "query.finish") continue;
    bool has_materialized = false;
    for (const EventField& f : e.fields) {
      if (f.key == "materialized") has_materialized = true;
    }
    EXPECT_TRUE(has_materialized);
  }
}

TEST(EventsSemantics, PragmaTogglesAndShowEventsRenders) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  EXPECT_TRUE(db.events().Events().empty());  // off by default

  ASSERT_TRUE(interp.Execute("PRAGMA EVENTS = ON;\n"
                             "QUERY Infront {ahead};").ok());
  EXPECT_FALSE(db.events().Events().empty());
  EXPECT_EQ(interp.Execute("PRAGMA EVENTS = 2;").code(),
            StatusCode::kInvalidArgument);

  interp.ClearResults();
  ASSERT_TRUE(interp.Execute("SHOW EVENTS;").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("EVENTS:"), std::string::npos);
  EXPECT_NE(text.find("query.finish"), std::string::npos) << text;

  // OFF stops recording (retained events stay visible).
  size_t count = db.events().Events().size();
  ASSERT_TRUE(interp.Execute("PRAGMA EVENTS = OFF;\n"
                             "QUERY Infront {ahead};").ok());
  EXPECT_EQ(db.events().Events().size(), count);
}

TEST(EventsSemantics, CacheOutcomesAreAttributedPerQuery) {
  DatabaseOptions options;
  options.use_capture_rules = false;  // drive the component cache path
  options.events = true;
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  // Cold run: the component cache missed.
  EXPECT_GE(db.last_usage().cache_misses, 1u);
  EXPECT_EQ(db.last_usage().cache_hits, 0u);
  EXPECT_GT(db.last_usage().tuples_materialized, 0u);
  EXPECT_GT(db.last_usage().approx_bytes, 0u);
  EXPECT_GT(db.last_usage().peak_delta_tuples, 0u);

  // Repeat: a hit, visible in both the attribution and the event stream.
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_GE(db.last_usage().cache_hits, 1u);
  EXPECT_EQ(db.last_usage().cache_misses, 0u);
  bool saw_cache_hit = false;
  for (const Event& e : db.events().Events()) {
    if (e.type == "cache.hit") saw_cache_hit = true;
  }
  EXPECT_TRUE(saw_cache_hit);
}

TEST(EventsSemantics, ConstraintViolationsEmitEvents) {
  DatabaseOptions options;
  options.events = true;
  Database db(options);
  Interpreter interp(&db);
  ASSERT_TRUE(interp
                  .Execute("TYPE edgerel = RELATION OF RECORD src, dst: "
                           "INTEGER END;\n"
                           "VAR Edge: edgerel;\n"
                           "CONSTRAINT no_self_loop DENY EACH p IN Edge: "
                           "p.src = p.dst;\n"
                           "INSERT INTO Edge <1, 2>;")
                  .ok());
  EXPECT_EQ(interp.Execute("INSERT INTO Edge <3, 3>;").code(),
            StatusCode::kConstraintViolation);
  bool saw_violation = false;
  for (const Event& e : db.events().Events()) {
    if (e.type != "constraint.violation") continue;
    saw_violation = true;
    bool has_name = false;
    for (const EventField& f : e.fields) {
      if (f.key == "name" && f.str_value == "no_self_loop") has_name = true;
    }
    EXPECT_TRUE(has_name);
  }
  EXPECT_TRUE(saw_violation);
}

TEST(EventsSemantics, ExplainAnalyzeReportsResources) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kAheadProgram).ok());
  interp.ClearResults();
  ASSERT_TRUE(interp.Execute("EXPLAIN ANALYZE Infront {ahead};").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("resources: peak_delta="), std::string::npos) << text;
  EXPECT_NE(text.find("approx_bytes="), std::string::npos) << text;
}

TEST(EventsSemantics, SlowLogEntriesCarryTimestampsAndResources) {
  Database db;  // threshold 0: everything is admitted
  workload::EdgeList g = workload::RandomDigraph(16, 40, 3);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  using namespace build;  // NOLINT: terse AST construction
  ASSERT_TRUE(db.EvalRange(Constructed(Rel("g_E"), "g_tc")).ok());
  std::vector<SlowQueryLog::Entry> entries = db.slow_query_log().Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_GT(entries[0].wall_us, 0);
  EXPECT_GE(entries[0].steady_ns, 0);
  EXPECT_NE(entries[0].digest.find("peak_delta="), std::string::npos)
      << entries[0].digest;
  // SHOW SLOWLOG renders the wall-clock timestamp.
  std::string text = db.slow_query_log().ToText();
  EXPECT_NE(text.find("at 20"), std::string::npos) << text;
  EXPECT_NE(text.find("steady="), std::string::npos) << text;
}

/// Attribution is deterministic across thread counts (the same contract
/// EvalStats honours).
TEST(EventsSemantics, ResourceUsageIsThreadCountInvariant) {
  using namespace build;  // NOLINT: terse AST construction
  workload::EdgeList g = workload::RandomDigraph(48, 160, 11);
  std::string usage_1, usage_8;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    Database db;
    ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
    db.options().eval.exec.num_threads = threads;
    Result<Relation> r = db.EvalRange(Constructed(Rel("g_E"), "g_tc"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    (threads == 1 ? usage_1 : usage_8) = db.last_usage().ToText();
  }
  EXPECT_EQ(usage_1, usage_8);
}

}  // namespace
}  // namespace datacon
