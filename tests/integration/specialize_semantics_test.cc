// Pinned end-to-end guarantee of the magic-seed specialization: for every
// example program (and a few targeted scripts), evaluation with PRAGMA
// SPECIALIZE = ON must produce bit-identical query results to SPECIALIZE =
// OFF — the rewrite may only skip irrelevant work, never change answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "lang/interpreter.h"

namespace datacon {
namespace {

/// Canonical form of a relation: sorted tuple renderings.
std::vector<std::string> Canonical(const Relation& rel) {
  std::vector<std::string> out;
  for (const Tuple& t : rel.tuples()) {
    std::string row;
    for (const Value& v : t.values()) row += v.ToString() + "|";
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct RunOutcome {
  std::vector<std::vector<std::string>> results;
  EvalStats stats;
};

/// Executes `source` from scratch with specialization on or off and
/// canonicalizes every QUERY result.
RunOutcome RunScript(const std::string& source, bool specialize) {
  DatabaseOptions options;
  options.specialize = specialize;
  Database db(options);
  Interpreter interp(&db);
  Status s = interp.Execute(source);
  EXPECT_TRUE(s.ok()) << s.ToString();
  RunOutcome outcome;
  for (const Interpreter::QueryResult& r : interp.results()) {
    outcome.results.push_back(Canonical(r.relation));
  }
  outcome.stats = db.last_stats();
  return outcome;
}

constexpr const char* kBoundAhead = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
VAR Infront: infrontrel;

SELECTOR from_head (Obj: parttype) FOR Rel: aheadrel;
BEGIN EACH r IN Rel: r.head = Obj END from_head;

CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.head
END ahead;

INSERT INTO Infront <"vase", "table">, <"table", "chair">, <"chair", "wall">;
INSERT INTO Infront <"lamp", "desk">, <"desk", "rug">, <"rug", "floor">;

QUERY Infront {ahead} [from_head("vase")];
)";

TEST(SpecializeSemantics, BoundQueryPrunesButMatches) {
  RunOutcome on = RunScript(kBoundAhead, /*specialize=*/true);
  RunOutcome off = RunScript(kBoundAhead, /*specialize=*/false);
  ASSERT_EQ(on.results.size(), 1u);
  EXPECT_EQ(on.results, off.results);
  // Reachability from "vase" only: table, chair, wall.
  EXPECT_EQ(on.results[0].size(), 3u);
  // The specialized run actually restricted the fixpoint: the lamp chain
  // was dropped before evaluation.
  EXPECT_GT(on.stats.specialized_branches, 0u);
  EXPECT_GT(on.stats.seed_tuples_pruned, 0u);
  EXPECT_EQ(off.stats.specialized_branches, 0u);
  EXPECT_EQ(off.stats.seed_tuples_pruned, 0u);
}

TEST(SpecializeSemantics, EveryExampleProgramIsBitIdentical) {
  const std::filesystem::path dir(DATACON_EXAMPLES_DIR);
  size_t examples = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dbpl") continue;
    ++examples;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    RunOutcome on = RunScript(buffer.str(), /*specialize=*/true);
    RunOutcome off = RunScript(buffer.str(), /*specialize=*/false);
    EXPECT_EQ(on.results, off.results) << entry.path();
  }
  // The corpus exists and was actually exercised.
  EXPECT_GE(examples, 5u);
}

TEST(SpecializeSemantics, PragmaTogglesSpecialization) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kBoundAhead).ok());
  EXPECT_GT(db.last_stats().specialized_branches, 0u);

  ASSERT_TRUE(interp
                  .Execute("PRAGMA SPECIALIZE = OFF;\n"
                           "QUERY Infront {ahead} [from_head(\"vase\")];")
                  .ok());
  EXPECT_EQ(db.last_stats().specialized_branches, 0u);
  EXPECT_EQ(db.last_stats().seed_tuples_pruned, 0u);

  ASSERT_TRUE(interp
                  .Execute("PRAGMA SPECIALIZE = ON;\n"
                           "QUERY Infront {ahead} [from_head(\"vase\")];")
                  .ok());
  EXPECT_GT(db.last_stats().specialized_branches, 0u);

  // Same contract as the other ON/OFF pragmas: only 0/1 are accepted.
  EXPECT_EQ(interp.Execute("PRAGMA SPECIALIZE = 2;").code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecializeSemantics, ExplainAnalyzeReportsPruning) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kBoundAhead).ok());
  interp.ClearResults();
  ASSERT_TRUE(
      interp.Execute("EXPLAIN ANALYZE Infront {ahead} [from_head(\"vase\")];")
          .ok());
  ASSERT_EQ(interp.results().size(), 1u);
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("specialized branch(es)"), std::string::npos) << text;
  EXPECT_NE(text.find("seed tuple(s) pruned"), std::string::npos) << text;
  EXPECT_EQ(text.find(" 0 seed tuple(s) pruned"), std::string::npos) << text;
}

TEST(SpecializeSemantics, QueryConjunctSeedAlsoPrunes) {
  // The same restriction expressed as a query conjunct instead of a
  // trailing selector. DetectSeededTc captures this shape first, so turn
  // capture rules off to drive it through the general specialized path.
  std::string script(kBoundAhead);
  script +=
      "\nQUERY {EACH v IN Infront {ahead}: v.head = \"lamp\"};\n";

  DatabaseOptions options;
  options.use_capture_rules = false;
  for (bool specialize : {false, true}) {
    options.specialize = specialize;
    Database db(options);
    Interpreter interp(&db);
    ASSERT_TRUE(interp.Execute(script).ok());
    ASSERT_EQ(interp.results().size(), 2u);
    // lamp reaches desk, rug, floor.
    EXPECT_EQ(interp.results()[1].relation.size(), 3u);
    if (specialize) {
      EXPECT_GT(db.last_stats().specialized_branches, 0u);
      EXPECT_GT(db.last_stats().seed_tuples_pruned, 0u);
    }
  }
}

}  // namespace
}  // namespace datacon
