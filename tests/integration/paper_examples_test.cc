// End-to-end reproduction of the worked examples of sections 2 and 3 of
// "Data Constructors: On the Integration of Rules and Relations", written
// in the DBPL-flavoured surface language wherever the paper gives program
// text.

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "lang/interpreter.h"

namespace datacon {
namespace {

Tuple Pair(const char* a, const char* b) {
  return Tuple({Value::String(a), Value::String(b)});
}

// Section 2.3: objects, Infront, and the referential-integrity selector.
constexpr const char* kSection2 = R"(
TYPE parttype = STRING;
TYPE objectrel = RELATION KEY <part> OF RECORD part: parttype; weight: INTEGER END;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
VAR Objects: objectrel;
VAR Infront: infrontrel;

(* Referential integrity: front and back must reference Objects. *)
SELECTOR refint FOR Rel: infrontrel;
BEGIN EACH r IN Rel: SOME r1 IN Objects (r.front = r1.part)
                 AND SOME r2 IN Objects (r.back = r2.part)
END refint;

INSERT INTO Objects <"vase", 1>, <"table", 40>, <"chair", 10>;
)";

TEST(Section2, KeyConstraintOnObjects) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSection2).ok());
  // A second vase with a different weight violates the key.
  EXPECT_EQ(interp.Execute("INSERT INTO Objects <\"vase\", 2>;").code(),
            StatusCode::kKeyViolation);
}

TEST(Section2, ReferentialIntegrityThroughSelector) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSection2).ok());
  // Both parts known: accepted.
  ASSERT_TRUE(interp.Execute(R"(
INSERT INTO Infront <"vase", "table">;
Infront [refint] := Infront;
)")
                  .ok());
  // An unknown part: the conditional assignment raises the exception.
  ASSERT_TRUE(interp.Execute("INSERT INTO Infront <\"table\", \"ghost\">;")
                  .ok());
  EXPECT_EQ(interp.Execute("Infront [refint] := Infront;").code(),
            StatusCode::kInvalidArgument);
}

// Section 2.3 / 3.1: ahead_2 and the recursive ahead, plus hidden_by.
constexpr const char* kSection3 = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
VAR Infront: infrontrel;

SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

(* all object pairs separated by at most two steps *)
CONSTRUCTOR ahead_2 FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.back> OF EACH f IN Rel, EACH b IN Rel: f.back = b.front
END ahead_2;

(* all object pairs separated by an arbitrary number of steps *)
CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.head
END ahead;

INSERT INTO Infront <"vase", "table">, <"table", "chair">,
                    <"chair", "door">, <"door", "wall">;
)";

TEST(Section3, Ahead2IsBoundedComposition) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSection3).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead_2};").ok());
  const Relation& two = interp.results()[0].relation;
  // 4 direct pairs + 3 two-step pairs.
  EXPECT_EQ(two.size(), 7u);
  EXPECT_TRUE(two.Contains(Pair("vase", "chair")));
  EXPECT_FALSE(two.Contains(Pair("vase", "door")));
}

TEST(Section3, AheadIsTheFullClosure) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSection3).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  const Relation& ahead = interp.results()[0].relation;
  // Chain of 5 objects: 4+3+2+1 = 10 pairs.
  EXPECT_EQ(ahead.size(), 10u);
  EXPECT_TRUE(ahead.Contains(Pair("vase", "wall")));
}

TEST(Section3, AheadNSequenceConvergesToAhead) {
  // "Infront{ahead} = lim Infront{ahead_n}": unroll ahead_n as iterated
  // compositions and check the bounded results grow into the closure.
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSection3).ok());
  // ahead_3 in terms of ahead_2 (one more join step against Rel{ahead_2}).
  ASSERT_TRUE(interp.Execute(R"(
CONSTRUCTOR ahead_3 FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead_2}: f.back = b.head
END ahead_3;
CONSTRUCTOR ahead_4 FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead_3}: f.back = b.head
END ahead_4;
QUERY Infront {ahead_2};
QUERY Infront {ahead_3};
QUERY Infront {ahead_4};
QUERY Infront {ahead};
)")
                  .ok());
  const Relation& a2 = interp.results()[0].relation;
  const Relation& a3 = interp.results()[1].relation;
  const Relation& a4 = interp.results()[2].relation;
  const Relation& ahead = interp.results()[3].relation;
  EXPECT_EQ(a2.size(), 7u);
  EXPECT_EQ(a3.size(), 9u);
  EXPECT_EQ(a4.size(), 10u);
  // Monotone growth into the limit.
  for (const Tuple& t : a2.tuples()) EXPECT_TRUE(a3.Contains(t));
  for (const Tuple& t : a3.tuples()) EXPECT_TRUE(a4.Contains(t));
  EXPECT_TRUE(a4.SameTuples(ahead));
}

TEST(Section3, HiddenByComposedWithAhead) {
  // The paper's expression Infront[hidden_by("table")]{ahead}: the closure
  // of the selected subrelation.
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSection3).ok());
  ASSERT_TRUE(
      interp.Execute("QUERY Infront [hidden_by(\"table\")] {ahead};").ok());
  const Relation& behind = interp.results()[0].relation;
  EXPECT_EQ(behind.size(), 1u);
  EXPECT_TRUE(behind.Contains(Pair("table", "chair")));
}

TEST(Section3, SelectionOnConstructedRelation) {
  // The section 4 pattern: a predicate over the constructed relation —
  // everything the table is (transitively) in front of.
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSection3).ok());
  ASSERT_TRUE(interp.Execute(
                     "QUERY {EACH r IN Infront {ahead}: r.head = \"table\"};")
                  .ok());
  const Relation& behind = interp.results()[0].relation;
  EXPECT_EQ(behind.size(), 3u);  // chair, door, wall
  EXPECT_TRUE(behind.Contains(Pair("table", "wall")));
}

// Section 3.1's full mutually recursive scene.
constexpr const char* kMutualScene = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE ontoprel = RELATION OF RECORD top, base: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
TYPE aboverel = RELATION OF RECORD high, low: parttype END;
VAR Infront: infrontrel;
VAR Ontop: ontoprel;

CONSTRUCTOR ahead FOR Rel: infrontrel (OT: ontoprel): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <r.front, ah.tail> OF EACH r IN Rel,
        EACH ah IN Rel {ahead(OT)}: r.back = ah.head,
      <r.front, ab.low> OF EACH r IN Rel,
        EACH ab IN OT {above(Rel)}: r.back = ab.high
END ahead;

CONSTRUCTOR above FOR Rel: ontoprel (IF: infrontrel): aboverel;
BEGIN EACH r IN Rel: TRUE,
      <r.top, ab.low> OF EACH r IN Rel,
        EACH ab IN Rel {above(IF)}: r.base = ab.high,
      <r.top, ah.tail> OF EACH r IN Rel,
        EACH ah IN IF {ahead(Rel)}: r.base = ah.head
END above;
)";

TEST(Section31, VaseTableChair) {
  // "we would say that a vase is ahead of a chair if the vase is on top of
  // a table which is in front of the chair".
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kMutualScene).ok());
  ASSERT_TRUE(interp.Execute(R"(
INSERT INTO Ontop <"vase", "table">;
INSERT INTO Infront <"table", "chair">;
QUERY Ontop {above(Infront)};
QUERY Infront {ahead(Ontop)};
)")
                  .ok());
  const Relation& above = interp.results()[0].relation;
  EXPECT_TRUE(above.Contains(Pair("vase", "table")));
  EXPECT_TRUE(above.Contains(Pair("vase", "chair")));
  EXPECT_EQ(above.size(), 2u);
  const Relation& ahead = interp.results()[1].relation;
  EXPECT_TRUE(ahead.Contains(Pair("table", "chair")));
  EXPECT_EQ(ahead.size(), 1u);
}

TEST(Section31, DeeperMutualChain) {
  // lamp on vase on table in front of chair in front of wall: the lamp is
  // above the wall.
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kMutualScene).ok());
  ASSERT_TRUE(interp.Execute(R"(
INSERT INTO Ontop <"lamp", "vase">, <"vase", "table">;
INSERT INTO Infront <"table", "chair">, <"chair", "wall">;
QUERY Ontop {above(Infront)};
)")
                  .ok());
  const Relation& above = interp.results()[0].relation;
  EXPECT_TRUE(above.Contains(Pair("lamp", "wall")));
  EXPECT_TRUE(above.Contains(Pair("lamp", "table")));
  EXPECT_TRUE(above.Contains(Pair("vase", "chair")));
}

TEST(Section32, PaperLoopEquivalence) {
  // Section 3.2 defines the semantics through the REPEAT loop with
  // auxiliary variables. The naive strategy *is* that loop; check it
  // against the default engine on the mutual scene.
  DatabaseOptions naive_options;
  naive_options.eval.strategy = FixpointStrategy::kNaive;
  naive_options.use_capture_rules = false;
  Database naive_db(naive_options);
  Database default_db;
  for (Database* db : {&naive_db, &default_db}) {
    Interpreter interp(db);
    ASSERT_TRUE(interp.Execute(kMutualScene).ok());
    ASSERT_TRUE(interp.Execute(R"(
INSERT INTO Ontop <"a", "b">, <"c", "d">;
INSERT INTO Infront <"b", "c">, <"d", "e">;
)")
                    .ok());
  }
  using namespace build;  // NOLINT
  RangePtr range = Constructed(Rel("Ontop"), "above", {Rel("Infront")});
  Result<Relation> naive = naive_db.EvalRange(range);
  Result<Relation> fast = default_db.EvalRange(range);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(naive->SameTuples(*fast));
}

}  // namespace
}  // namespace datacon
