// Differential testing over randomly generated positive constructor
// systems: for each seed, a random family of (possibly mutually) recursive
// binary constructors is defined, then evaluated four ways —
//
//   * semi-naive bottom-up (the default engine),
//   * naive bottom-up (the paper's REPEAT loop),
//   * with and without capture rules / inlining,
//   * top-down tabled SLD over the Horn translation (section 3.4),
//
// and all results must agree tuple-for-tuple. This is the strongest check
// in the suite: any soundness or completeness bug in instantiation,
// differential evaluation, translation, or tabling shows up as a mismatch.

#include <gtest/gtest.h>

#include <random>

#include "ast/builder.h"
#include "core/database.h"
#include "prolog/sld.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

/// Builds `k` random constructors c0..c{k-1} over a shared binary base.
/// Each has the identity branch plus 1-2 join branches against a random
/// constructor (possibly itself or a later one — mutual recursion), with a
/// random join orientation and projection.
Status DefineRandomSystem(Database* db, int k, std::mt19937_64* rng) {
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "edge",
      Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("E", "edge"));

  std::uniform_int_distribution<int> pick_ctor(0, k - 1);
  std::uniform_int_distribution<int> pick_bool(0, 1);
  std::uniform_int_distribution<int> pick_branches(1, 2);

  std::vector<ConstructorDeclPtr> decls;
  for (int i = 0; i < k; ++i) {
    std::vector<BranchPtr> branches;
    branches.push_back(IdentityBranch("r", Rel("Rel"), True()));
    int extra = pick_branches(*rng);
    for (int b = 0; b < extra; ++b) {
      std::string other = "c" + std::to_string(pick_ctor(*rng));
      // Join field orientation: f.<jf> = q.<jq>.
      std::string jf = pick_bool(*rng) ? "src" : "dst";
      std::string jq = pick_bool(*rng) ? "src" : "dst";
      // Projection: one field from each side, random choice.
      std::string tf = pick_bool(*rng) ? "src" : "dst";
      std::string tq = pick_bool(*rng) ? "src" : "dst";
      branches.push_back(MakeBranch(
          {FieldRef("f", tf), FieldRef("q", tq)},
          {Each("f", Rel("Rel")),
           Each("q", Constructed(Rel("Rel"), other))},
          Eq(FieldRef("f", jf), FieldRef("q", jq))));
    }
    decls.push_back(std::make_shared<ConstructorDecl>(
        "c" + std::to_string(i), FormalRelation{"Rel", "edge"},
        std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "edge",
        Union(std::move(branches))));
  }
  return db->DefineConstructorGroup(decls);
}

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, AllEnginesAgree) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  const int k = 2;

  // Small dense-ish graph keeps the fixpoints interesting but bounded.
  workload::EdgeList g = workload::RandomDigraph(5, 7, GetParam() * 31 + 7);

  struct Config {
    const char* name;
    FixpointStrategy strategy;
    bool capture;
    bool inline_nonrecursive;
  };
  const Config configs[] = {
      {"semi-naive", FixpointStrategy::kSemiNaive, false, false},
      {"naive", FixpointStrategy::kNaive, false, false},
      {"semi-naive+opt", FixpointStrategy::kSemiNaive, true, true},
  };

  for (int target = 0; target < k; ++target) {
    RangePtr range = Constructed(Rel("E"), "c" + std::to_string(target));
    std::optional<Relation> reference;
    for (const Config& config : configs) {
      std::mt19937_64 fresh(static_cast<uint64_t>(GetParam()));
      DatabaseOptions options;
      options.eval.strategy = config.strategy;
      options.use_capture_rules = config.capture;
      options.inline_nonrecursive = config.inline_nonrecursive;
      Database db(options);
      ASSERT_TRUE(DefineRandomSystem(&db, k, &fresh).ok());
      ASSERT_TRUE(workload::LoadEdges(&db, "E", g).ok());

      Result<Relation> result = db.EvalRange(range);
      ASSERT_TRUE(result.ok())
          << config.name << ": " << result.status().ToString();
      if (!reference.has_value()) {
        reference = std::move(result).value();
      } else {
        EXPECT_TRUE(reference->SameTuples(result.value()))
            << "engine " << config.name << " disagrees on c" << target
            << " (seed " << GetParam() << ")";
      }
    }

    // Top-down tabled SLD over the Horn translation must agree too.
    // Random mutual programs can blow up proof search combinatorially (the
    // paper's point!), so the check runs under a resolution budget and the
    // comparison is skipped — never failed — when the budget trips.
    std::mt19937_64 fresh(static_cast<uint64_t>(GetParam()));
    Database db;
    ASSERT_TRUE(DefineRandomSystem(&db, k, &fresh).ok());
    ASSERT_TRUE(workload::LoadEdges(&db, "E", g).ok());
    SldOptions sld;
    sld.tabling = true;
    sld.max_steps = 200000;
    Result<Relation> top_down =
        EvaluateRangeTopDown(db.catalog(), range, sld);
    if (top_down.status().code() == StatusCode::kDivergence) {
      continue;  // proof search exceeded its budget; bottom-up checks stand
    }
    ASSERT_TRUE(top_down.ok()) << top_down.status().ToString();
    EXPECT_TRUE(reference->SameTuples(top_down.value()))
        << "top-down disagrees on c" << target << " (seed " << GetParam()
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace datacon
