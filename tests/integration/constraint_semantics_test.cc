// Pinned end-to-end guarantee of constraint enforcement: on a
// violation-free program, PRAGMA CONSTRAINTS = ON must produce
// bit-identical query results to OFF — checking may only observe, never
// change answers. Runs the whole example corpus (which now includes the
// constraints_* programs) under all four ON/OFF x simplified/full
// combinations.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "lang/interpreter.h"

namespace datacon {
namespace {

/// Canonical form of a relation: sorted tuple renderings.
std::vector<std::string> Canonical(const Relation& rel) {
  std::vector<std::string> out;
  for (const Tuple& t : rel.tuples()) {
    std::string row;
    for (const Value& v : t.values()) row += v.ToString() + "|";
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Executes `source` from scratch and canonicalizes every QUERY result.
std::vector<std::vector<std::string>> RunScript(const std::string& source,
                                                bool constraints,
                                                bool simplify) {
  DatabaseOptions options;
  options.constraints = constraints;
  options.constraints_simplify = simplify;
  Database db(options);
  Interpreter interp(&db);
  Status s = interp.Execute(source);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::vector<std::vector<std::string>> results;
  for (const Interpreter::QueryResult& r : interp.results()) {
    results.push_back(Canonical(r.relation));
  }
  return results;
}

TEST(ConstraintSemantics, ExamplesAreBitIdenticalOnVsOff) {
  const std::filesystem::path dir(DATACON_EXAMPLES_DIR);
  size_t examples = 0;
  size_t with_constraints = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dbpl") continue;
    ++examples;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    if (source.find("CONSTRAINT") != std::string::npos) ++with_constraints;
    std::vector<std::vector<std::string>> off =
        RunScript(source, /*constraints=*/false, /*simplify=*/true);
    std::vector<std::vector<std::string>> on_simplified =
        RunScript(source, /*constraints=*/true, /*simplify=*/true);
    std::vector<std::vector<std::string>> on_full =
        RunScript(source, /*constraints=*/true, /*simplify=*/false);
    EXPECT_EQ(on_simplified, off) << entry.path();
    EXPECT_EQ(on_full, off) << entry.path();
  }
  // The corpus exists and actually exercises constraints.
  EXPECT_GE(examples, 8u);
  EXPECT_GE(with_constraints, 3u);
}

}  // namespace
}  // namespace datacon
