file(REMOVE_RECURSE
  "CMakeFiles/bench_bounded.dir/bench_bounded.cc.o"
  "CMakeFiles/bench_bounded.dir/bench_bounded.cc.o.d"
  "bench_bounded"
  "bench_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
