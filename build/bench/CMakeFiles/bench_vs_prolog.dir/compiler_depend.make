# Empty compiler generated dependencies file for bench_vs_prolog.
# This may be replaced when dependencies are built.
