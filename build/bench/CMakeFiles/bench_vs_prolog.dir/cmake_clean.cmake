file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_prolog.dir/bench_vs_prolog.cc.o"
  "CMakeFiles/bench_vs_prolog.dir/bench_vs_prolog.cc.o.d"
  "bench_vs_prolog"
  "bench_vs_prolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_prolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
