file(REMOVE_RECURSE
  "CMakeFiles/bench_mutual.dir/bench_mutual.cc.o"
  "CMakeFiles/bench_mutual.dir/bench_mutual.cc.o.d"
  "bench_mutual"
  "bench_mutual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
