# Empty dependencies file for bench_mutual.
# This may be replaced when dependencies are built.
