# Empty dependencies file for storage_relation_test.
# This may be replaced when dependencies are built.
