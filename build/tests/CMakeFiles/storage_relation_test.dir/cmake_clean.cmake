file(REMOVE_RECURSE
  "CMakeFiles/storage_relation_test.dir/storage/relation_test.cc.o"
  "CMakeFiles/storage_relation_test.dir/storage/relation_test.cc.o.d"
  "storage_relation_test"
  "storage_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
