file(REMOVE_RECURSE
  "CMakeFiles/core_catalog_test.dir/core/catalog_test.cc.o"
  "CMakeFiles/core_catalog_test.dir/core/catalog_test.cc.o.d"
  "core_catalog_test"
  "core_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
