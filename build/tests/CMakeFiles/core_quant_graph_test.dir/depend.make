# Empty dependencies file for core_quant_graph_test.
# This may be replaced when dependencies are built.
