file(REMOVE_RECURSE
  "CMakeFiles/integration_same_generation_test.dir/integration/same_generation_test.cc.o"
  "CMakeFiles/integration_same_generation_test.dir/integration/same_generation_test.cc.o.d"
  "integration_same_generation_test"
  "integration_same_generation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_same_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
