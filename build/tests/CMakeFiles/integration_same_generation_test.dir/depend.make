# Empty dependencies file for integration_same_generation_test.
# This may be replaced when dependencies are built.
