file(REMOVE_RECURSE
  "CMakeFiles/core_capture_test.dir/core/capture_test.cc.o"
  "CMakeFiles/core_capture_test.dir/core/capture_test.cc.o.d"
  "core_capture_test"
  "core_capture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_capture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
