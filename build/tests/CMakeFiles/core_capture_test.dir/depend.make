# Empty dependencies file for core_capture_test.
# This may be replaced when dependencies are built.
