# Empty compiler generated dependencies file for types_value_test.
# This may be replaced when dependencies are built.
