file(REMOVE_RECURSE
  "CMakeFiles/ra_branch_plan_test.dir/ra/branch_plan_test.cc.o"
  "CMakeFiles/ra_branch_plan_test.dir/ra/branch_plan_test.cc.o.d"
  "ra_branch_plan_test"
  "ra_branch_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_branch_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
