# Empty compiler generated dependencies file for ra_branch_plan_test.
# This may be replaced when dependencies are built.
