file(REMOVE_RECURSE
  "CMakeFiles/core_instantiate_test.dir/core/instantiate_test.cc.o"
  "CMakeFiles/core_instantiate_test.dir/core/instantiate_test.cc.o.d"
  "core_instantiate_test"
  "core_instantiate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_instantiate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
