# Empty dependencies file for prolog_sld_test.
# This may be replaced when dependencies are built.
