file(REMOVE_RECURSE
  "CMakeFiles/prolog_sld_test.dir/prolog/sld_test.cc.o"
  "CMakeFiles/prolog_sld_test.dir/prolog/sld_test.cc.o.d"
  "prolog_sld_test"
  "prolog_sld_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prolog_sld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
