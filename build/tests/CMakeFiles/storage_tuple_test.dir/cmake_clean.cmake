file(REMOVE_RECURSE
  "CMakeFiles/storage_tuple_test.dir/storage/tuple_test.cc.o"
  "CMakeFiles/storage_tuple_test.dir/storage/tuple_test.cc.o.d"
  "storage_tuple_test"
  "storage_tuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
