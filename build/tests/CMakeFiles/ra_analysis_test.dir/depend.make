# Empty dependencies file for ra_analysis_test.
# This may be replaced when dependencies are built.
