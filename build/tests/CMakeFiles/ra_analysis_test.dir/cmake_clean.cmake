file(REMOVE_RECURSE
  "CMakeFiles/ra_analysis_test.dir/ra/analysis_test.cc.o"
  "CMakeFiles/ra_analysis_test.dir/ra/analysis_test.cc.o.d"
  "ra_analysis_test"
  "ra_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
