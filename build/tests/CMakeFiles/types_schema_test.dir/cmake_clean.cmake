file(REMOVE_RECURSE
  "CMakeFiles/types_schema_test.dir/types/schema_test.cc.o"
  "CMakeFiles/types_schema_test.dir/types/schema_test.cc.o.d"
  "types_schema_test"
  "types_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/types_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
