# Empty dependencies file for types_schema_test.
# This may be replaced when dependencies are built.
