# Empty compiler generated dependencies file for core_rewrite_test.
# This may be replaced when dependencies are built.
