file(REMOVE_RECURSE
  "CMakeFiles/graph_scc_test.dir/graph/scc_test.cc.o"
  "CMakeFiles/graph_scc_test.dir/graph/scc_test.cc.o.d"
  "graph_scc_test"
  "graph_scc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_scc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
