# Empty dependencies file for graph_scc_test.
# This may be replaced when dependencies are built.
