file(REMOVE_RECURSE
  "CMakeFiles/ra_eval_test.dir/ra/eval_test.cc.o"
  "CMakeFiles/ra_eval_test.dir/ra/eval_test.cc.o.d"
  "ra_eval_test"
  "ra_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
