# Empty dependencies file for ra_eval_test.
# This may be replaced when dependencies are built.
