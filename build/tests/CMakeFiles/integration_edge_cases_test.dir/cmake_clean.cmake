file(REMOVE_RECURSE
  "CMakeFiles/integration_edge_cases_test.dir/integration/edge_cases_test.cc.o"
  "CMakeFiles/integration_edge_cases_test.dir/integration/edge_cases_test.cc.o.d"
  "integration_edge_cases_test"
  "integration_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
