# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for prolog_translate_test.
