file(REMOVE_RECURSE
  "CMakeFiles/prolog_translate_test.dir/prolog/translate_test.cc.o"
  "CMakeFiles/prolog_translate_test.dir/prolog/translate_test.cc.o.d"
  "prolog_translate_test"
  "prolog_translate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prolog_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
