# Empty compiler generated dependencies file for prolog_translate_test.
# This may be replaced when dependencies are built.
