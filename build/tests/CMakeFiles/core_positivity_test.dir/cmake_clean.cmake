file(REMOVE_RECURSE
  "CMakeFiles/core_positivity_test.dir/core/positivity_test.cc.o"
  "CMakeFiles/core_positivity_test.dir/core/positivity_test.cc.o.d"
  "core_positivity_test"
  "core_positivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_positivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
