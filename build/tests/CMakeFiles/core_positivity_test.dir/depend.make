# Empty dependencies file for core_positivity_test.
# This may be replaced when dependencies are built.
