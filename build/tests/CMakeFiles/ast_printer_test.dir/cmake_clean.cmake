file(REMOVE_RECURSE
  "CMakeFiles/ast_printer_test.dir/ast/printer_test.cc.o"
  "CMakeFiles/ast_printer_test.dir/ast/printer_test.cc.o.d"
  "ast_printer_test"
  "ast_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ast_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
