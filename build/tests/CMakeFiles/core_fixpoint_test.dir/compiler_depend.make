# Empty compiler generated dependencies file for core_fixpoint_test.
# This may be replaced when dependencies are built.
