file(REMOVE_RECURSE
  "CMakeFiles/core_fixpoint_test.dir/core/fixpoint_test.cc.o"
  "CMakeFiles/core_fixpoint_test.dir/core/fixpoint_test.cc.o.d"
  "core_fixpoint_test"
  "core_fixpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fixpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
