file(REMOVE_RECURSE
  "CMakeFiles/core_access_path_test.dir/core/access_path_test.cc.o"
  "CMakeFiles/core_access_path_test.dir/core/access_path_test.cc.o.d"
  "core_access_path_test"
  "core_access_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_access_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
