# Empty dependencies file for core_access_path_test.
# This may be replaced when dependencies are built.
