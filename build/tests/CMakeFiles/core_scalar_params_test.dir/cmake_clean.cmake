file(REMOVE_RECURSE
  "CMakeFiles/core_scalar_params_test.dir/core/scalar_params_test.cc.o"
  "CMakeFiles/core_scalar_params_test.dir/core/scalar_params_test.cc.o.d"
  "core_scalar_params_test"
  "core_scalar_params_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scalar_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
