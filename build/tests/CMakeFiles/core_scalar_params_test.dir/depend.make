# Empty dependencies file for core_scalar_params_test.
# This may be replaced when dependencies are built.
