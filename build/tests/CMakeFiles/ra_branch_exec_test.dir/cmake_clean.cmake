file(REMOVE_RECURSE
  "CMakeFiles/ra_branch_exec_test.dir/ra/branch_exec_test.cc.o"
  "CMakeFiles/ra_branch_exec_test.dir/ra/branch_exec_test.cc.o.d"
  "ra_branch_exec_test"
  "ra_branch_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_branch_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
