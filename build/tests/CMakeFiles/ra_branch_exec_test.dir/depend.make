# Empty dependencies file for ra_branch_exec_test.
# This may be replaced when dependencies are built.
