file(REMOVE_RECURSE
  "CMakeFiles/core_subst_test.dir/core/subst_test.cc.o"
  "CMakeFiles/core_subst_test.dir/core/subst_test.cc.o.d"
  "core_subst_test"
  "core_subst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_subst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
