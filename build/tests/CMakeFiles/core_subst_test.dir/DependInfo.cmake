
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/subst_test.cc" "tests/CMakeFiles/core_subst_test.dir/core/subst_test.cc.o" "gcc" "tests/CMakeFiles/core_subst_test.dir/core/subst_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/datacon_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/prolog/CMakeFiles/datacon_prolog.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/datacon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/datacon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/datacon_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/datacon_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/datacon_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/datacon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/datacon_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
