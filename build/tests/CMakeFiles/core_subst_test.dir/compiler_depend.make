# Empty compiler generated dependencies file for core_subst_test.
# This may be replaced when dependencies are built.
