file(REMOVE_RECURSE
  "CMakeFiles/integration_random_programs_test.dir/integration/random_programs_test.cc.o"
  "CMakeFiles/integration_random_programs_test.dir/integration/random_programs_test.cc.o.d"
  "integration_random_programs_test"
  "integration_random_programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_random_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
