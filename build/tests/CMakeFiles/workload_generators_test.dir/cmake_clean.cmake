file(REMOVE_RECURSE
  "CMakeFiles/workload_generators_test.dir/workload/generators_test.cc.o"
  "CMakeFiles/workload_generators_test.dir/workload/generators_test.cc.o.d"
  "workload_generators_test"
  "workload_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
