# Empty dependencies file for core_semantics_test.
# This may be replaced when dependencies are built.
