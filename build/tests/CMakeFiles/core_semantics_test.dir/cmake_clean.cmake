file(REMOVE_RECURSE
  "CMakeFiles/core_semantics_test.dir/core/semantics_test.cc.o"
  "CMakeFiles/core_semantics_test.dir/core/semantics_test.cc.o.d"
  "core_semantics_test"
  "core_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
