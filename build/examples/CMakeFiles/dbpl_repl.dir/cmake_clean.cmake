file(REMOVE_RECURSE
  "CMakeFiles/dbpl_repl.dir/dbpl_repl.cpp.o"
  "CMakeFiles/dbpl_repl.dir/dbpl_repl.cpp.o.d"
  "dbpl_repl"
  "dbpl_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
