# Empty compiler generated dependencies file for dbpl_repl.
# This may be replaced when dependencies are built.
