# Empty dependencies file for cad_scene.
# This may be replaced when dependencies are built.
