file(REMOVE_RECURSE
  "CMakeFiles/cad_scene.dir/cad_scene.cpp.o"
  "CMakeFiles/cad_scene.dir/cad_scene.cpp.o.d"
  "cad_scene"
  "cad_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
