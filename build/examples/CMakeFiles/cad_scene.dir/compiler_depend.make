# Empty compiler generated dependencies file for cad_scene.
# This may be replaced when dependencies are built.
