# Empty compiler generated dependencies file for datacon_lang.
# This may be replaced when dependencies are built.
