file(REMOVE_RECURSE
  "CMakeFiles/datacon_lang.dir/interpreter.cc.o"
  "CMakeFiles/datacon_lang.dir/interpreter.cc.o.d"
  "CMakeFiles/datacon_lang.dir/lexer.cc.o"
  "CMakeFiles/datacon_lang.dir/lexer.cc.o.d"
  "CMakeFiles/datacon_lang.dir/parser.cc.o"
  "CMakeFiles/datacon_lang.dir/parser.cc.o.d"
  "libdatacon_lang.a"
  "libdatacon_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
