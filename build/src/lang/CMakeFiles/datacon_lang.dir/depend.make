# Empty dependencies file for datacon_lang.
# This may be replaced when dependencies are built.
