file(REMOVE_RECURSE
  "libdatacon_lang.a"
)
