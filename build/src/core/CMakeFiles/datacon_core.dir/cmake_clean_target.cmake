file(REMOVE_RECURSE
  "libdatacon_core.a"
)
