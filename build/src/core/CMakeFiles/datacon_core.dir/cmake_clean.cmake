file(REMOVE_RECURSE
  "CMakeFiles/datacon_core.dir/access_path.cc.o"
  "CMakeFiles/datacon_core.dir/access_path.cc.o.d"
  "CMakeFiles/datacon_core.dir/capture.cc.o"
  "CMakeFiles/datacon_core.dir/capture.cc.o.d"
  "CMakeFiles/datacon_core.dir/catalog.cc.o"
  "CMakeFiles/datacon_core.dir/catalog.cc.o.d"
  "CMakeFiles/datacon_core.dir/database.cc.o"
  "CMakeFiles/datacon_core.dir/database.cc.o.d"
  "CMakeFiles/datacon_core.dir/fixpoint.cc.o"
  "CMakeFiles/datacon_core.dir/fixpoint.cc.o.d"
  "CMakeFiles/datacon_core.dir/instantiate.cc.o"
  "CMakeFiles/datacon_core.dir/instantiate.cc.o.d"
  "CMakeFiles/datacon_core.dir/positivity.cc.o"
  "CMakeFiles/datacon_core.dir/positivity.cc.o.d"
  "CMakeFiles/datacon_core.dir/quant_graph.cc.o"
  "CMakeFiles/datacon_core.dir/quant_graph.cc.o.d"
  "CMakeFiles/datacon_core.dir/rewrite.cc.o"
  "CMakeFiles/datacon_core.dir/rewrite.cc.o.d"
  "CMakeFiles/datacon_core.dir/semantics.cc.o"
  "CMakeFiles/datacon_core.dir/semantics.cc.o.d"
  "CMakeFiles/datacon_core.dir/subst.cc.o"
  "CMakeFiles/datacon_core.dir/subst.cc.o.d"
  "libdatacon_core.a"
  "libdatacon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
