
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_path.cc" "src/core/CMakeFiles/datacon_core.dir/access_path.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/access_path.cc.o.d"
  "/root/repo/src/core/capture.cc" "src/core/CMakeFiles/datacon_core.dir/capture.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/capture.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/core/CMakeFiles/datacon_core.dir/catalog.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/catalog.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/datacon_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/database.cc.o.d"
  "/root/repo/src/core/fixpoint.cc" "src/core/CMakeFiles/datacon_core.dir/fixpoint.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/fixpoint.cc.o.d"
  "/root/repo/src/core/instantiate.cc" "src/core/CMakeFiles/datacon_core.dir/instantiate.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/instantiate.cc.o.d"
  "/root/repo/src/core/positivity.cc" "src/core/CMakeFiles/datacon_core.dir/positivity.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/positivity.cc.o.d"
  "/root/repo/src/core/quant_graph.cc" "src/core/CMakeFiles/datacon_core.dir/quant_graph.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/quant_graph.cc.o.d"
  "/root/repo/src/core/rewrite.cc" "src/core/CMakeFiles/datacon_core.dir/rewrite.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/rewrite.cc.o.d"
  "/root/repo/src/core/semantics.cc" "src/core/CMakeFiles/datacon_core.dir/semantics.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/semantics.cc.o.d"
  "/root/repo/src/core/subst.cc" "src/core/CMakeFiles/datacon_core.dir/subst.cc.o" "gcc" "src/core/CMakeFiles/datacon_core.dir/subst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ra/CMakeFiles/datacon_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/datacon_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/datacon_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/datacon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/datacon_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
