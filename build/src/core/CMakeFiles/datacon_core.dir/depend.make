# Empty dependencies file for datacon_core.
# This may be replaced when dependencies are built.
