file(REMOVE_RECURSE
  "CMakeFiles/datacon_common.dir/status.cc.o"
  "CMakeFiles/datacon_common.dir/status.cc.o.d"
  "CMakeFiles/datacon_common.dir/string_util.cc.o"
  "CMakeFiles/datacon_common.dir/string_util.cc.o.d"
  "libdatacon_common.a"
  "libdatacon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
