file(REMOVE_RECURSE
  "libdatacon_common.a"
)
