# Empty dependencies file for datacon_common.
# This may be replaced when dependencies are built.
