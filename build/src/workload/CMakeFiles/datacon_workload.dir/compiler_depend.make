# Empty compiler generated dependencies file for datacon_workload.
# This may be replaced when dependencies are built.
