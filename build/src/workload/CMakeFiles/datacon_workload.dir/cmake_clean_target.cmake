file(REMOVE_RECURSE
  "libdatacon_workload.a"
)
