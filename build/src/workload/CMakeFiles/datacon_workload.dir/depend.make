# Empty dependencies file for datacon_workload.
# This may be replaced when dependencies are built.
