file(REMOVE_RECURSE
  "CMakeFiles/datacon_workload.dir/generators.cc.o"
  "CMakeFiles/datacon_workload.dir/generators.cc.o.d"
  "libdatacon_workload.a"
  "libdatacon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
