# Empty dependencies file for datacon_storage.
# This may be replaced when dependencies are built.
