file(REMOVE_RECURSE
  "CMakeFiles/datacon_storage.dir/csv.cc.o"
  "CMakeFiles/datacon_storage.dir/csv.cc.o.d"
  "CMakeFiles/datacon_storage.dir/index.cc.o"
  "CMakeFiles/datacon_storage.dir/index.cc.o.d"
  "CMakeFiles/datacon_storage.dir/relation.cc.o"
  "CMakeFiles/datacon_storage.dir/relation.cc.o.d"
  "CMakeFiles/datacon_storage.dir/tuple.cc.o"
  "CMakeFiles/datacon_storage.dir/tuple.cc.o.d"
  "libdatacon_storage.a"
  "libdatacon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
