file(REMOVE_RECURSE
  "libdatacon_storage.a"
)
