# Empty compiler generated dependencies file for datacon_graph.
# This may be replaced when dependencies are built.
