file(REMOVE_RECURSE
  "libdatacon_graph.a"
)
