file(REMOVE_RECURSE
  "CMakeFiles/datacon_graph.dir/scc.cc.o"
  "CMakeFiles/datacon_graph.dir/scc.cc.o.d"
  "libdatacon_graph.a"
  "libdatacon_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
