file(REMOVE_RECURSE
  "CMakeFiles/datacon_prolog.dir/horn.cc.o"
  "CMakeFiles/datacon_prolog.dir/horn.cc.o.d"
  "CMakeFiles/datacon_prolog.dir/sld.cc.o"
  "CMakeFiles/datacon_prolog.dir/sld.cc.o.d"
  "CMakeFiles/datacon_prolog.dir/translate.cc.o"
  "CMakeFiles/datacon_prolog.dir/translate.cc.o.d"
  "libdatacon_prolog.a"
  "libdatacon_prolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_prolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
