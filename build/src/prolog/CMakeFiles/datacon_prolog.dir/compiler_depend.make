# Empty compiler generated dependencies file for datacon_prolog.
# This may be replaced when dependencies are built.
