file(REMOVE_RECURSE
  "libdatacon_prolog.a"
)
