file(REMOVE_RECURSE
  "libdatacon_ra.a"
)
