
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ra/analysis.cc" "src/ra/CMakeFiles/datacon_ra.dir/analysis.cc.o" "gcc" "src/ra/CMakeFiles/datacon_ra.dir/analysis.cc.o.d"
  "/root/repo/src/ra/branch_exec.cc" "src/ra/CMakeFiles/datacon_ra.dir/branch_exec.cc.o" "gcc" "src/ra/CMakeFiles/datacon_ra.dir/branch_exec.cc.o.d"
  "/root/repo/src/ra/branch_plan.cc" "src/ra/CMakeFiles/datacon_ra.dir/branch_plan.cc.o" "gcc" "src/ra/CMakeFiles/datacon_ra.dir/branch_plan.cc.o.d"
  "/root/repo/src/ra/eval.cc" "src/ra/CMakeFiles/datacon_ra.dir/eval.cc.o" "gcc" "src/ra/CMakeFiles/datacon_ra.dir/eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/datacon_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/datacon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/datacon_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
