file(REMOVE_RECURSE
  "CMakeFiles/datacon_ra.dir/analysis.cc.o"
  "CMakeFiles/datacon_ra.dir/analysis.cc.o.d"
  "CMakeFiles/datacon_ra.dir/branch_exec.cc.o"
  "CMakeFiles/datacon_ra.dir/branch_exec.cc.o.d"
  "CMakeFiles/datacon_ra.dir/branch_plan.cc.o"
  "CMakeFiles/datacon_ra.dir/branch_plan.cc.o.d"
  "CMakeFiles/datacon_ra.dir/eval.cc.o"
  "CMakeFiles/datacon_ra.dir/eval.cc.o.d"
  "libdatacon_ra.a"
  "libdatacon_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
