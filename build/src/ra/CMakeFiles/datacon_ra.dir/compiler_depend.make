# Empty compiler generated dependencies file for datacon_ra.
# This may be replaced when dependencies are built.
