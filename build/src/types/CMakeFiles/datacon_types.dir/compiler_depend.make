# Empty compiler generated dependencies file for datacon_types.
# This may be replaced when dependencies are built.
