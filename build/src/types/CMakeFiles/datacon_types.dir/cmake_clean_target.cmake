file(REMOVE_RECURSE
  "libdatacon_types.a"
)
