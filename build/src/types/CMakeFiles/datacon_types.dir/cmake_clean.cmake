file(REMOVE_RECURSE
  "CMakeFiles/datacon_types.dir/schema.cc.o"
  "CMakeFiles/datacon_types.dir/schema.cc.o.d"
  "CMakeFiles/datacon_types.dir/value.cc.o"
  "CMakeFiles/datacon_types.dir/value.cc.o.d"
  "libdatacon_types.a"
  "libdatacon_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
