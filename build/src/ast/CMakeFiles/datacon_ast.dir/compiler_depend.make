# Empty compiler generated dependencies file for datacon_ast.
# This may be replaced when dependencies are built.
