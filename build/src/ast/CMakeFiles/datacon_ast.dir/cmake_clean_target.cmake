file(REMOVE_RECURSE
  "libdatacon_ast.a"
)
