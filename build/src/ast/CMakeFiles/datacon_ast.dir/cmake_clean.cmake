file(REMOVE_RECURSE
  "CMakeFiles/datacon_ast.dir/ast.cc.o"
  "CMakeFiles/datacon_ast.dir/ast.cc.o.d"
  "CMakeFiles/datacon_ast.dir/printer.cc.o"
  "CMakeFiles/datacon_ast.dir/printer.cc.o.d"
  "libdatacon_ast.a"
  "libdatacon_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacon_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
