// An interactive REPL for the DBPL-flavoured surface language.
//
//   $ ./build/examples/dbpl_repl
//   dbpl> TYPE t = RELATION OF RECORD a, b: INTEGER END;
//   dbpl> VAR E: t;
//   dbpl> INSERT INTO E <1, 2>, <2, 3>;
//   dbpl> CONSTRUCTOR tc FOR Rel: t (): t;
//   ....>   BEGIN EACH r IN Rel: TRUE,
//   ....>   <f.a, b.b> OF EACH f IN Rel, EACH b IN Rel {tc}: f.b = b.a
//   ....>   END tc;
//   dbpl> QUERY E {tc};
//   dbpl> CHECK tc;
//   dbpl> PRAGMA LINT = ON;
//
// Statements end with ';'; multi-line input is accumulated until the
// declaration-aware heuristic sees a complete statement (declarations end
// at the ';' after 'END <name>'). Reads from stdin, so it also runs
// scripts: ./build/examples/dbpl_repl < program.dbpl
//
// Lint diagnostics (from CHECK statements or definitions under
// `PRAGMA LINT = ON;`) print with their line:column span, colored by
// severity when stdout is a terminal.
//
// Tracing: `--trace-out=trace.json` enables the recorder for the whole
// session and writes a Chrome trace-event JSON file at EOF — open it in
// chrome://tracing or https://ui.perfetto.dev. `PRAGMA TRACE = ON|OFF;`
// toggles recording mid-session regardless of the flag.
//
// Telemetry: `--events-out=events.jsonl` enables the structured event log
// for the session and writes it as JSONL at EOF (`PRAGMA EVENTS` still
// toggles recording mid-session); `--metrics-out=metrics.prom` writes the
// database's metrics in Prometheus text exposition format at EOF.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/diagnostic.h"
#include "common/build_info.h"
#include "common/trace.h"
#include "lang/interpreter.h"

namespace {

int Usage(int code) {
  std::printf(
      "usage: dbpl_repl [--trace-out=FILE] [--events-out=FILE]\n"
      "                 [--metrics-out=FILE] [--version] [--help]\n"
      "\n"
      "Reads DBPL statements from stdin (interactively or piped).\n"
      "\n"
      "options:\n"
      "  --trace-out=FILE    record a session-wide query trace and write it\n"
      "                      to FILE as Chrome trace-event JSON at EOF\n"
      "                      (open in chrome://tracing or ui.perfetto.dev)\n"
      "  --events-out=FILE   enable the structured event log for the whole\n"
      "                      session and write it to FILE as JSONL at EOF\n"
      "  --metrics-out=FILE  write the database's metrics to FILE in\n"
      "                      Prometheus text exposition format at EOF\n"
      "  --version           print version and build info and exit\n"
      "  --help              show this help and exit\n");
  return code;
}

/// True when `buffer` holds at least one complete statement: it ends with
/// ';' and every BEGIN has its END (so constructor/selector bodies with
/// inner semicolons are not split early). A SELECTOR/CONSTRUCTOR
/// declaration spans up to the ';' after `END <name>` — its header line
/// also ends with ';', so the header alone must not count as complete.
bool StatementComplete(const std::string& buffer) {
  size_t begins = 0, ends = 0, pos = 0;
  while ((pos = buffer.find("BEGIN", pos)) != std::string::npos) {
    ++begins;
    pos += 5;
  }
  pos = 0;
  while ((pos = buffer.find("END", pos)) != std::string::npos) {
    ++ends;
    pos += 3;
  }
  if (begins > ends) return false;
  if (begins == 0 && (buffer.find("SELECTOR") != std::string::npos ||
                      buffer.find("CONSTRUCTOR") != std::string::npos)) {
    return false;  // declaration header awaiting its BEGIN body
  }
  // Trailing semicolon (ignoring whitespace)?
  size_t last = buffer.find_last_not_of(" \t\r\n");
  return last != std::string::npos && buffer[last] == ';';
}

/// "line:col: severity CODE: message" with the severity colored (errors
/// red, warnings yellow) when printing to a terminal.
void PrintDiagnostic(const datacon::Diagnostic& d, bool color) {
  const char* tint = !color ? ""
                     : d.severity == datacon::Severity::kError ? "\x1b[31m"
                                                               : "\x1b[33m";
  const char* reset = color ? "\x1b[0m" : "";
  if (d.loc.valid()) {
    std::printf("%s: ", d.loc.ToString().c_str());
  }
  std::printf("%s%s %s%s: %s\n", tint,
              std::string(datacon::SeverityName(d.severity)).c_str(),
              d.code.c_str(), reset, d.message.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string events_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
      if (trace_out.empty()) {
        std::fprintf(stderr, "error: --trace-out requires a file name\n");
        return Usage(2);
      }
    } else if (arg.rfind("--events-out=", 0) == 0) {
      events_out = arg.substr(std::string("--events-out=").size());
      if (events_out.empty()) {
        std::fprintf(stderr, "error: --events-out requires a file name\n");
        return Usage(2);
      }
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
      if (metrics_out.empty()) {
        std::fprintf(stderr, "error: --metrics-out requires a file name\n");
        return Usage(2);
      }
    } else if (arg == "--version") {
      std::printf("dbpl_repl %s\nbuild: %s\n", datacon::kDataconVersion,
                  datacon::BuildInfoString().c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage(2);
    }
  }

  datacon::Database db;
  datacon::Interpreter interp(&db);
  bool interactive = isatty(0);
  bool color = isatty(1);
  if (!events_out.empty()) {
    db.options().events = true;
    db.events().set_enabled(true);
  }

  datacon::TraceRecorder& recorder = datacon::TraceRecorder::Global();
  recorder.SetCurrentThreadName("main");
  if (!trace_out.empty()) {
    recorder.Clear();
    recorder.Enable(true);
  }

  std::string buffer;
  std::string line;
  if (interactive) {
    std::printf("DataCon DBPL REPL %s (%s) — statements end with ';'\n",
                datacon::kDataconVersion,
                datacon::BuildInfoString().c_str());
    std::printf("dbpl> ");
    std::fflush(stdout);
  }
  while (std::getline(std::cin, line)) {
    buffer += line;
    buffer += "\n";
    if (!StatementComplete(buffer)) {
      if (interactive) {
        std::printf("....> ");
        std::fflush(stdout);
      }
      continue;
    }
    datacon::Status status = interp.Execute(buffer);
    buffer.clear();
    for (const datacon::Diagnostic& d : interp.diagnostics()) {
      PrintDiagnostic(d, color);
    }
    interp.ClearDiagnostics();
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    }
    for (const datacon::Interpreter::QueryResult& result : interp.results()) {
      std::printf("%s\n", result.text.c_str());
      for (const datacon::Tuple& t : result.relation.SortedTuples()) {
        std::printf("  %s\n", t.ToString().c_str());
      }
    }
    interp.ClearResults();
    if (interactive) {
      std::printf("dbpl> ");
      std::fflush(stdout);
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    out << recorder.ToChromeJson() << "\n";
    std::fprintf(stderr, "trace: %zu event(s) written to %s\n",
                 recorder.EventCount(), trace_out.c_str());
  }
  if (!events_out.empty()) {
    std::ofstream out(events_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write events to '%s'\n",
                   events_out.c_str());
      return 1;
    }
    out << db.events().ToJsonl();
    std::fprintf(stderr, "events: %zu event(s) written to %s\n",
                 db.events().Events().size(), events_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                   metrics_out.c_str());
      return 1;
    }
    out << db.metrics().ToPrometheus();
    std::fprintf(stderr, "metrics: written to %s\n", metrics_out.c_str());
  }
  return 0;
}
