// Quickstart: the paper's CAD scene in fifty lines.
//
// Declares the Infront relation, the recursive `ahead` constructor
// (transitive closure) and the parameterized `hidden_by` selector, loads a
// small scene, and runs the queries of sections 2-3:
//
//   Infront {ahead}
//   Infront [hidden_by("table")]
//   { EACH r IN Infront{ahead} : r.head = "table" }
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "lang/interpreter.h"

namespace {

constexpr const char* kProgram = R"(
PRAGMA THREADS = 4;

TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
VAR Infront: infrontrel;

SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.head
END ahead;

INSERT INTO Infront <"vase", "table">, <"table", "chair">,
                    <"chair", "door">, <"door", "wall">;

QUERY Infront {ahead};
QUERY Infront [hidden_by("table")];
QUERY {EACH r IN Infront {ahead}: r.head = "table"};
EXPLAIN Infront {ahead};
)";

}  // namespace

int main() {
  datacon::Database db;
  datacon::Interpreter interp(&db);

  datacon::Status status = interp.Execute(kProgram);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  for (const datacon::Interpreter::QueryResult& result : interp.results()) {
    std::printf("== %s ==\n", result.text.c_str());
    for (const datacon::Tuple& t : result.relation.SortedTuples()) {
      std::printf("  %s\n", t.ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
