// Organizational chart: recursive queries beyond plain closure, plus the
// stratified-negation extension.
//
//   * reports_to*  — transitive reporting chain (closure, capture rule)
//   * same_level   — the same-generation query (recursive, NOT a closure:
//                    the generic semi-naive engine carries it)
//   * unmanaged    — employees with no chain to the CEO, defined with NOT
//                    over a constructed relation: rejected by strict DBPL
//                    positivity, accepted by the stratified extension.
//
// Run: ./build/examples/org_chart

#include <cstdio>

#include "ast/builder.h"
#include "core/database.h"

namespace {

using namespace datacon;        // NOLINT: example brevity
using namespace datacon::build; // NOLINT: example brevity

Status Run() {
  DatabaseOptions options;
  options.allow_stratified_negation = true;  // the documented extension
  Database db(options);

  DATACON_RETURN_IF_ERROR(db.DefineRelationType(
      "reportrel",
      Schema({{"emp", ValueType::kString}, {"boss", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(db.DefineRelationType(
      "pairrel",
      Schema({{"a", ValueType::kString}, {"b", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(db.CreateRelation("Reports", "reportrel"));

  const char* edges[][2] = {
      {"ava", "ceo"},   {"ben", "ceo"},  {"cara", "ava"}, {"dan", "ava"},
      {"eli", "ben"},   {"fay", "cara"}, {"gus", "dan"},  {"hana", "eli"},
      {"ivan", "rogue"},  // rogue is not connected to the ceo
  };
  for (const auto& e : edges) {
    DATACON_RETURN_IF_ERROR(db.Insert(
        "Reports", Tuple({Value::String(e[0]), Value::String(e[1])})));
  }

  // chain = transitive reporting (the `ahead` shape; the capture rule
  // serves it with the specialized closure).
  DATACON_RETURN_IF_ERROR(db.DefineConstructor(std::make_shared<ConstructorDecl>(
      "chain", FormalRelation{"Rel", "reportrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "reportrel",
      Union({IdentityBranch("r", Rel("Rel"), True()),
             MakeBranch({FieldRef("f", "emp"), FieldRef("b", "boss")},
                        {Each("f", Rel("Rel")),
                         Each("b", Constructed(Rel("Rel"), "chain"))},
                        Eq(FieldRef("f", "boss"), FieldRef("b", "emp")))}))));

  // same_level = same distance to a common ancestor (same-generation).
  DATACON_RETURN_IF_ERROR(db.DefineConstructor(std::make_shared<ConstructorDecl>(
      "same_level", FormalRelation{"Rel", "reportrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "pairrel",
      Union({MakeBranch({FieldRef("u", "emp"), FieldRef("v", "emp")},
                        {Each("u", Rel("Rel")), Each("v", Rel("Rel"))},
                        Eq(FieldRef("u", "boss"), FieldRef("v", "boss"))),
             MakeBranch({FieldRef("u", "emp"), FieldRef("v", "emp")},
                        {Each("u", Rel("Rel")), Each("v", Rel("Rel")),
                         Each("s", Constructed(Rel("Rel"), "same_level"))},
                        And({Eq(FieldRef("u", "boss"), FieldRef("s", "a")),
                             Eq(FieldRef("s", "b"), FieldRef("v", "boss"))}))}))));

  // unmanaged = report edges whose employee has no chain to the ceo.
  // Negative dependency on `chain` — strictly non-positive, stratifiable.
  DATACON_RETURN_IF_ERROR(db.DefineConstructor(std::make_shared<ConstructorDecl>(
      "unmanaged", FormalRelation{"Rel", "reportrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "reportrel",
      Union({IdentityBranch(
          "r", Rel("Rel"),
          Not(In({FieldRef("r", "emp"), Str("ceo")},
                 Constructed(Rel("Rel"), "chain"))))}))));

  DATACON_ASSIGN_OR_RETURN(Relation chain,
                           db.EvalRange(Constructed(Rel("Reports"), "chain")));
  std::printf("reports_to* (%zu tuples); everyone under the ceo:\n ", chain.size());
  for (const Tuple& t : chain.SortedTuples()) {
    if (t.value(1).AsString() == "ceo") {
      std::printf(" %s", t.value(0).AsString().c_str());
    }
  }

  DATACON_ASSIGN_OR_RETURN(
      Relation same,
      db.EvalRange(Constructed(Rel("Reports"), "same_level")));
  std::printf("\n\nsame_level pairs for fay:\n ");
  for (const Tuple& t : same.SortedTuples()) {
    if (t.value(0).AsString() == "fay") {
      std::printf(" %s", t.value(1).AsString().c_str());
    }
  }

  DATACON_ASSIGN_OR_RETURN(
      Relation unmanaged,
      db.EvalRange(Constructed(Rel("Reports"), "unmanaged")));
  std::printf("\n\nunmanaged report edges (no chain to the ceo):\n");
  for (const Tuple& t : unmanaged.SortedTuples()) {
    std::printf("  %s -> %s\n", t.value(0).AsString().c_str(),
                t.value(1).AsString().c_str());
  }

  // The same definition under strict DBPL rules is refused at definition
  // time — show the paper-faithful behaviour too.
  Database strict;
  DATACON_RETURN_IF_ERROR(strict.DefineRelationType(
      "reportrel",
      Schema({{"emp", ValueType::kString}, {"boss", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(strict.CreateRelation("Reports", "reportrel"));
  DATACON_RETURN_IF_ERROR(strict.DefineConstructor(std::make_shared<ConstructorDecl>(
      "chain", FormalRelation{"Rel", "reportrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "reportrel",
      Union({IdentityBranch("r", Rel("Rel"), True()),
             MakeBranch({FieldRef("f", "emp"), FieldRef("b", "boss")},
                        {Each("f", Rel("Rel")),
                         Each("b", Constructed(Rel("Rel"), "chain"))},
                        Eq(FieldRef("f", "boss"), FieldRef("b", "emp")))}))));
  Status refused = strict.DefineConstructor(std::make_shared<ConstructorDecl>(
      "unmanaged", FormalRelation{"Rel", "reportrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "reportrel",
      Union({IdentityBranch(
          "r", Rel("Rel"),
          Not(In({FieldRef("r", "emp"), Str("ceo")},
                 Constructed(Rel("Rel"), "chain"))))})));
  std::printf("\nstrict DBPL verdict on `unmanaged`: %s\n",
              refused.ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
