// The full section 3.1 scene: the mutually recursive `ahead`/`above`
// constructors over Infront and Ontop, on a larger generated scene, with
// the strategies of section 4 compared side by side (naive REPEAT loop vs
// semi-naive differential evaluation) and the augmented quant graph of
// Fig. 3 rendered as Graphviz DOT.
//
// Run: ./build/examples/cad_scene

#include <chrono>
#include <cstdio>

#include "ast/builder.h"
#include "core/database.h"
#include "core/quant_graph.h"
#include "workload/generators.h"

namespace {

using namespace datacon;        // NOLINT: example brevity
using namespace datacon::build; // NOLINT: example brevity

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Status Run() {
  // A scene with 60 objects and ~150 spatial facts.
  Database db;
  DATACON_RETURN_IF_ERROR(workload::SetupCadScene(&db, 60, 80, 70, 42));

  std::printf("Infront: %zu facts, Ontop: %zu facts\n",
              db.GetRelation("Infront").value()->size(),
              db.GetRelation("Ontop").value()->size());

  RangePtr ahead_range = Constructed(Rel("Infront"), "ahead", {Rel("Ontop")});
  RangePtr above_range = Constructed(Rel("Ontop"), "above", {Rel("Infront")});

  for (FixpointStrategy strategy :
       {FixpointStrategy::kNaive, FixpointStrategy::kSemiNaive}) {
    db.options().eval.strategy = strategy;
    db.options().use_capture_rules = false;  // force the generic engine
    auto start = std::chrono::steady_clock::now();
    DATACON_ASSIGN_OR_RETURN(Relation ahead, db.EvalRange(ahead_range));
    DATACON_ASSIGN_OR_RETURN(Relation above, db.EvalRange(above_range));
    std::printf(
        "%-10s | Infront{ahead(Ontop)}: %5zu tuples | Ontop{above(Infront)}: "
        "%5zu tuples | %7.2f ms | %zu rounds\n",
        strategy == FixpointStrategy::kNaive ? "naive" : "semi-naive",
        ahead.size(), above.size(), MillisSince(start),
        db.last_stats().iterations);
  }

  // The compiler's view: the augmented quant graph of Fig. 3 for `ahead`.
  DATACON_ASSIGN_OR_RETURN(const ConstructorDecl* ahead_decl,
                           db.catalog().LookupConstructor("ahead"));
  std::printf("\nAugmented quant graph (Fig. 3) of `ahead` as DOT:\n%s\n",
              BuildAugmentedQuantGraph(*ahead_decl, db.catalog())
                  .ToDot()
                  .c_str());

  // And the plan report.
  DATACON_ASSIGN_OR_RETURN(std::string plan, db.Explain(ahead_range));
  std::printf("EXPLAIN Infront {ahead(Ontop)}:\n%s", plan.c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
