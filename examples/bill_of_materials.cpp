// Bill of materials: the classic recursive-query workload (part explosion),
// written against the programmatic C++ API rather than the surface
// language. Demonstrates:
//
//   * building constructor declarations with the ast builder,
//   * the "contains (transitively)" closure over a part hierarchy,
//   * a prepared, parameterized query form (the paper's *logical access
//     path*): "which parts does assembly P transitively contain?" compiled
//     once, executed for several P — served by a seeded closure that never
//     materializes the full containment relation.
//
// Run: ./build/examples/bill_of_materials

#include <cstdio>

#include "ast/builder.h"
#include "core/database.h"

namespace {

using namespace datacon;        // NOLINT: example brevity
using namespace datacon::build; // NOLINT: example brevity

Status BuildAndQuery() {
  Database db;

  // TYPE subpartrel = RELATION OF RECORD whole, part: STRING END;
  DATACON_RETURN_IF_ERROR(db.DefineRelationType(
      "subpartrel",
      Schema({{"whole", ValueType::kString}, {"part", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(db.CreateRelation("Subpart", "subpartrel"));

  // CONSTRUCTOR contains FOR Rel: subpartrel (): subpartrel — the paper's
  // `ahead` shape over the part hierarchy.
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("f", "whole"), FieldRef("b", "part")},
                  {Each("f", Rel("Rel")),
                   Each("b", Constructed(Rel("Rel"), "contains"))},
                  Eq(FieldRef("f", "part"), FieldRef("b", "whole")))});
  DATACON_RETURN_IF_ERROR(db.DefineConstructor(std::make_shared<ConstructorDecl>(
      "contains", FormalRelation{"Rel", "subpartrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{},
      "subpartrel", body)));

  // A small product: a bicycle.
  const char* edges[][2] = {
      {"bicycle", "frame"},   {"bicycle", "wheel"},  {"bicycle", "drivetrain"},
      {"wheel", "rim"},       {"wheel", "spoke"},    {"wheel", "tire"},
      {"drivetrain", "chain"},{"drivetrain", "crank"},{"crank", "bolt"},
      {"frame", "tube"},      {"rim", "bolt"},
  };
  for (const auto& e : edges) {
    DATACON_RETURN_IF_ERROR(db.Insert(
        "Subpart", Tuple({Value::String(e[0]), Value::String(e[1])})));
  }

  // Full part explosion.
  DATACON_ASSIGN_OR_RETURN(Relation all,
                           db.EvalRange(Constructed(Rel("Subpart"), "contains")));
  std::printf("Subpart {contains} has %zu tuples:\n", all.size());
  for (const Tuple& t : all.SortedTuples()) {
    std::printf("  %s contains %s\n", t.value(0).AsString().c_str(),
                t.value(1).AsString().c_str());
  }

  // Prepared single-assembly query: compiled once, executed per assembly.
  CalcExprPtr form = Union({IdentityBranch(
      "c", Constructed(Rel("Subpart"), "contains"),
      Eq(FieldRef("c", "whole"), Param("assembly")))});
  DATACON_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           db.Prepare(form, {{"assembly", ValueType::kString}}));
  std::printf("\nprepared plan: %s\n", prepared.plan_description().c_str());

  for (const char* assembly : {"wheel", "drivetrain", "bolt"}) {
    DATACON_ASSIGN_OR_RETURN(
        Relation parts,
        prepared.Execute({{"assembly", Value::String(assembly)}}));
    std::printf("parts of %s:", assembly);
    for (const Tuple& t : parts.SortedTuples()) {
      std::printf(" %s", t.value(1).AsString().c_str());
    }
    std::printf("\n");
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status status = BuildAndQuery();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
