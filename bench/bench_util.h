#ifndef DATACON_BENCH_BENCH_UTIL_H_
#define DATACON_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace datacon::bench {

/// Aborts the benchmark run on setup errors — benchmark bodies must not
/// silently measure failed work.
inline void Must(const Status& status) {
  DATACON_CHECK(status.ok(), status.ToString());
}

template <typename T>
T MustValue(Result<T> result) {
  DATACON_CHECK(result.ok(), result.status().ToString());
  return std::move(result).value();
}

/// Splices `"datacon_metrics":{...}` (the process-level aggregate —
/// query latency percentiles, fixpoint rounds, ... merged from every
/// destroyed Database) into the Google Benchmark JSON artifact, just
/// before its closing brace. A no-op when the run recorded no metrics or
/// the file is malformed. Benchmark fixtures must destroy their databases
/// before Shutdown for their registries to be retired into the aggregate.
inline void AppendMetricsToArtifact(const std::string& path) {
  MetricsRegistry& registry = ProcessMetrics();
  std::string metrics = registry.ToJson();
  if (metrics == "{\"histograms\":{}}" ||
      metrics == "{\"histograms\":{},\"counters\":{}}") {
    return;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string doc = buffer.str();
  in.close();
  size_t close = doc.find_last_of('}');
  if (close == std::string::npos) return;
  doc.insert(close, ",\"datacon_metrics\":" + metrics);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return;
  out << doc;
}

/// Shared benchmark driver: like BENCHMARK_MAIN(), plus a `--json` flag
/// that writes the run as machine-readable JSON to BENCH_<name>.json (the
/// EXPERIMENTS.md artifact convention), with the engine's own metric
/// histograms spliced in as `datacon_metrics`. All other arguments pass
/// through to Google Benchmark untouched.
inline int RunBenchmarks(int argc, char** argv, const char* name) {
  std::vector<char*> args;
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  args.reserve(static_cast<size_t>(argc) + 2);
  args.push_back(argv[0]);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (json) {
    out_flag = std::string("--benchmark_out=BENCH_") + name + ".json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (json) {
    AppendMetricsToArtifact(std::string("BENCH_") + name + ".json");
  }
  return 0;
}

}  // namespace datacon::bench

#endif  // DATACON_BENCH_BENCH_UTIL_H_
