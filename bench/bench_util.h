#ifndef DATACON_BENCH_BENCH_UTIL_H_
#define DATACON_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/result.h"
#include "common/status.h"

namespace datacon::bench {

/// Aborts the benchmark run on setup errors — benchmark bodies must not
/// silently measure failed work.
inline void Must(const Status& status) {
  DATACON_CHECK(status.ok(), status.ToString());
}

template <typename T>
T MustValue(Result<T> result) {
  DATACON_CHECK(result.ok(), result.status().ToString());
  return std::move(result).value();
}

}  // namespace datacon::bench

#endif  // DATACON_BENCH_BENCH_UTIL_H_
