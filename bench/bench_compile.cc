// Experiments E7 + E8 — the three-level framework (section 4).
//
// E7: compile-once / execute-many. A parameterized query form prepared
// once (the paper's *logical access path*) against re-deriving the plan on
// every call. Expected shape: Prepare+N*Execute beats N*EvalQuery as soon
// as N is a handful, because detection, inlining, and instantiation move
// to level 2.
//
// E8: level-1 analysis cost — parsing, type checking, positivity testing
// and partitioning m constructor definitions. Expected shape: linear in m;
// this is the work DBPL pays at compile time so the runtime does not.

#include <benchmark/benchmark.h>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "core/access_path.h"
#include "core/quant_graph.h"
#include "lang/interpreter.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

// --- E7: prepared query forms ---

void BM_ExecutePrepared(benchmark::State& state) {
  Database db;
  Must(workload::SetupClosure(&db, "g", workload::Chain(256)));
  CalcExprPtr form = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Param("start")))});
  PreparedQuery prepared =
      MustValue(db.Prepare(form, {{"start", ValueType::kInt}}));
  int64_t start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustValue(prepared.Execute({{"start", Value::Int(start)}})).size());
    start = (start + 37) % 256;
  }
}

void BM_EvalQueryEachTime(benchmark::State& state) {
  Database db;
  Must(workload::SetupClosure(&db, "g", workload::Chain(256)));
  int64_t start = 0;
  for (auto _ : state) {
    CalcExprPtr query = Union({IdentityBranch(
        "r", Constructed(Rel("g_E"), "g_tc"),
        Eq(FieldRef("r", "src"), Int(start)))});
    benchmark::DoNotOptimize(MustValue(db.EvalQuery(query)).size());
    start = (start + 37) % 256;
  }
}

BENCHMARK(BM_ExecutePrepared)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EvalQueryEachTime)->Unit(benchmark::kMicrosecond);

// The paper's *physical* access path: materialize the unrestricted form
// once, partition on the constant, answer each instantiation by probe.
void BM_PhysicalAccessPathProbe(benchmark::State& state) {
  Database db;
  Must(workload::SetupClosure(&db, "g", workload::Chain(256)));
  CalcExprPtr form = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Param("start")))});
  PhysicalAccessPath path =
      MustValue(PhysicalAccessPath::Build(&db, form, "start"));
  int64_t start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustValue(path.Execute(Value::Int(start))).size());
    start = (start + 37) % 256;
  }
  state.counters["materialized"] =
      static_cast<double>(path.materialized_size());
}

void BM_PhysicalAccessPathBuild(benchmark::State& state) {
  Database db;
  Must(workload::SetupClosure(&db, "g", workload::Chain(256)));
  CalcExprPtr form = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Param("start")))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustValue(PhysicalAccessPath::Build(&db, form, "start"))
            .materialized_size());
  }
}

BENCHMARK(BM_PhysicalAccessPathProbe)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PhysicalAccessPathBuild)->Unit(benchmark::kMillisecond);

// --- E8: level-1 definition analysis ---

/// A family of m independent constructor definitions in surface syntax.
std::string DefinitionFamily(int m) {
  std::string source;
  for (int i = 0; i < m; ++i) {
    std::string t = "rel" + std::to_string(i);
    source += "TYPE " + t + " = RELATION OF RECORD a, b: INTEGER END;\n";
    source += "VAR R" + std::to_string(i) + ": " + t + ";\n";
    source += "CONSTRUCTOR c" + std::to_string(i) + " FOR Rel: " + t +
              " (): " + t + ";\n" +
              "BEGIN EACH r IN Rel: TRUE,\n" +
              "  <f.a, b.b> OF EACH f IN Rel, EACH b IN Rel {c" +
              std::to_string(i) + "}: f.b = b.a\nEND c" + std::to_string(i) +
              ";\n";
  }
  return source;
}

void BM_Level1Analysis(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::string source = DefinitionFamily(m);
  for (auto _ : state) {
    Database db;
    Interpreter interp(&db);
    Must(interp.Execute(source));
    benchmark::DoNotOptimize(db.catalog().constructors().size());
  }
  state.counters["constructors"] = static_cast<double>(m);
}

BENCHMARK(BM_Level1Analysis)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

// The lint pipeline is level-1 work too: name resolution, rule-safety,
// constant folding, and per-SCC recursion classification over the whole
// catalog. Expected shape: linear in m, dominated by branch walking.
void BM_LintPipeline(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Database db;
  Interpreter interp(&db);
  Must(interp.Execute(DefinitionFamily(m)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Lint().diagnostics.size());
  }
  state.counters["constructors"] = static_cast<double>(m);
}

BENCHMARK(BM_LintPipeline)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_DefinitionPartitioning(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Database db;
  Interpreter interp(&db);
  Must(interp.Execute(DefinitionFamily(m)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionDefinitions(db.catalog()).size());
  }
}

BENCHMARK(BM_DefinitionPartitioning)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_AugmentedQuantGraph(benchmark::State& state) {
  Database db;
  Must(workload::SetupCadScene(&db, 4, 2, 2, 1));
  const ConstructorDecl* ahead =
      MustValue(db.catalog().LookupConstructor("ahead"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildAugmentedQuantGraph(*ahead, db.catalog()).arcs.size());
  }
}

BENCHMARK(BM_AugmentedQuantGraph)->Unit(benchmark::kMicrosecond);

void BM_ExplainReport(benchmark::State& state) {
  Database db;
  Must(workload::SetupClosure(&db, "g", workload::Chain(16)));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.Explain(range)).size());
  }
}

BENCHMARK(BM_ExplainReport)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacon

BENCHMARK_MAIN();
