// Experiment E14 — proof-carrying typed evaluation.
//
// When every definition in the catalog was admitted with PRAGMA TYPECHECK
// on, the whole-program inference (analysis/typecheck.h) has already
// discharged every per-tuple type test the interpreter would otherwise run,
// and the evaluator switches to the typed-proven variant that elides them
// (ra/eval.h). This benchmark measures the same bounded-closure query with
// typechecking off (checked interpreter) and on (typed-proven): a
// three-column path constructor whose length attribute is computed
// arithmetically, so the hot loop runs a real EvalTerm/EvalPred walk per
// derived tuple. The shape is deliberately NOT a binary transitive closure
// (capture rules would shortcut it) and the length filter is not an
// equi-join conjunct (hash probes would bypass the predicate walk). The
// cache is disabled so every iteration re-derives.

#include <benchmark/benchmark.h>

#include <vector>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "ra/env.h"
#include "ra/eval.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

/// Declares the three-column bounded-path constructor over integer edges:
///   CONSTRUCTOR paths FOR Rel: edgerel (): pathrel;
///   BEGIN <r.src, r.dst, 1> OF EACH r IN Rel: TRUE,
///         <f.src, b.dst, f.len + 1> OF EACH f IN Rel {paths},
///         EACH b IN Rel: f.dst = b.src AND f.len < bound
///   END paths;
/// and loads `g` into the edge relation E.
void SetupBoundedPaths(Database* db, const workload::EdgeList& g, int bound) {
  Must(db->DefineRelationType(
      "edgerel",
      Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}})));
  Must(db->DefineRelationType("pathrel", Schema({{"src", ValueType::kInt},
                                                 {"dst", ValueType::kInt},
                                                 {"len", ValueType::kInt}})));
  Must(db->CreateRelation("E", "edgerel"));
  auto body = Union(
      {MakeBranch({FieldRef("r", "src"), FieldRef("r", "dst"), Int(1)},
                  {Each("r", Rel("Rel"))}, True()),
       MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst"),
                   Add(FieldRef("f", "len"), Int(1))},
                  {Each("f", Constructed(Rel("Rel"), "paths")),
                   Each("b", Rel("Rel"))},
                  And({Eq(FieldRef("f", "dst"), FieldRef("b", "src")),
                       Lt(FieldRef("f", "len"), Int(bound))}))});
  auto decl = std::make_shared<ConstructorDecl>(
      "paths", FormalRelation{"Rel", "edgerel"}, std::vector<FormalRelation>{},
      std::vector<FormalScalar>{}, "pathrel", body);
  Must(db->DefineConstructor(decl));
  Must(workload::LoadEdges(db, "E", g));
}

void RunBoundedPaths(benchmark::State& state, const workload::EdgeList& g,
                     int bound) {
  const bool typecheck = state.range(0) != 0;
  DatabaseOptions options;
  options.typecheck = typecheck;
  options.cache = false;  // every iteration must re-derive
  Database db(options);
  SetupBoundedPaths(&db, g, bound);
  CalcExprPtr query =
      Union({IdentityBranch("p", Constructed(Rel("E"), "paths"), True())});
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustValue(db.EvalQuery(query)).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["edges"] = static_cast<double>(g.edges.size());
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["typecheck"] = typecheck ? 1.0 : 0.0;
  state.counters["typed_proven"] = db.last_typed_proven() ? 1.0 : 0.0;
}

/// The dispatch elision in isolation: the step branch's predicate and
/// target term walked per candidate pair, exactly what the branch executor
/// runs in its inner loop. End-to-end closure timings fold this into
/// indexing and materialization; here it is the whole measurement.
void BM_Typed_PredWalk(benchmark::State& state) {
  class NoRelations : public RelationResolver {
   public:
    Result<const Relation*> Resolve(const Range& range) const override {
      return Status::NotFound("relation '" + range.relation() + "'");
    }
  };
  const bool proven = state.range(0) != 0;
  Schema schema({{"src", ValueType::kInt},
                 {"dst", ValueType::kInt},
                 {"len", ValueType::kInt}});
  std::vector<Tuple> fs;
  std::vector<Tuple> bs;
  for (int64_t i = 0; i < 512; ++i) {
    fs.push_back(Tuple(
        {Value::Int(i % 11), Value::Int(i % 7), Value::Int(i % 64)}));
    bs.push_back(Tuple(
        {Value::Int((i * 5) % 7), Value::Int(i % 13), Value::Int(0)}));
  }
  PredPtr pred = And({Eq(FieldRef("f", "dst"), FieldRef("b", "src")),
                      Lt(FieldRef("f", "len"), Int(48))});
  TermPtr target = Add(FieldRef("f", "len"), Int(1));
  NoRelations resolver;
  Evaluator eval(&resolver, proven);
  int64_t matched = 0;
  int64_t sum = 0;
  for (auto _ : state) {
    matched = 0;
    sum = 0;
    Environment env;
    for (size_t i = 0; i < fs.size(); ++i) {
      env.Bind("f", &fs[i], &schema);
      env.Bind("b", &bs[i], &schema);
      if (MustValue(eval.EvalPred(*pred, env))) {
        ++matched;
        sum += MustValue(eval.EvalTerm(*target, env)).AsInt();
      }
    }
    benchmark::DoNotOptimize(matched);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["pairs"] = static_cast<double>(fs.size());
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["typed_proven"] = proven ? 1.0 : 0.0;
}

void BM_Typed_Chain(benchmark::State& state) {
  // One long chain: quadratically many paths, each re-extended per round.
  RunBoundedPaths(state, workload::Chain(90), /*bound=*/90);
}

void BM_Typed_Grid(benchmark::State& state) {
  // Dense join fan-out: many distinct (src, dst, len) triples per pair.
  RunBoundedPaths(state, workload::Grid(10, 10), /*bound=*/12);
}

void BM_Typed_LayeredDag(benchmark::State& state) {
  // Part-explosion shape with short paths: fixpoint rounds are cheap, the
  // per-tuple target/filter walk dominates.
  RunBoundedPaths(state, workload::LayeredDag(6, 48, 3, /*seed=*/17),
                  /*bound=*/8);
}

BENCHMARK(BM_Typed_PredWalk)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Typed_Chain)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Typed_Grid)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Typed_LayeredDag)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

int main(int argc, char** argv) {
  return datacon::bench::RunBenchmarks(argc, argv, "typed");
}
