// Experiment E5 — propagating query constraints into the constructor
// (section 4: "propagating the constraints given by pred(r) into the
// constructor definition may considerably reduce query evaluation costs").
//
// Query form: { EACH r IN E{tc} : r.src = <node> }.
//   * full:   materialize the whole closure, then filter (capture off).
//   * seeded: constant propagation — reachability from <node> only
//             (capture on: the seeded closure plan).
//
// Expected shape: seeded wins by a factor that grows with how small the
// one-source slice is relative to the full closure; on a chain the gap is
// O(n); on a dense random graph where one source reaches everything the
// gap narrows to the cost ratio of one BFS vs n BFS.

#include <benchmark/benchmark.h>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

enum class Shape { kChain, kDag, kRandom };

workload::EdgeList MakeGraph(Shape shape, int n) {
  switch (shape) {
    case Shape::kChain:
      return workload::Chain(n);
    case Shape::kDag:
      return workload::LayeredDag(/*layers=*/8, /*width=*/n / 8,
                                  /*fanout=*/2, /*seed=*/5);
    case Shape::kRandom:
      return workload::RandomDigraph(n, 3 * n, /*seed=*/5);
  }
  return workload::Chain(n);
}

void RunPushdown(benchmark::State& state, Shape shape, bool pushdown) {
  const int n = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.use_capture_rules = pushdown;
  Database db(options);
  workload::EdgeList g = MakeGraph(shape, n);
  Must(workload::SetupClosure(&db, "g", g));

  CalcExprPtr query = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Int(0)))});

  size_t result_size = 0;
  for (auto _ : state) {
    Relation r = MustValue(db.EvalQuery(query));
    result_size = r.size();
    benchmark::DoNotOptimize(result_size);
  }
  state.counters["result"] = static_cast<double>(result_size);
  state.counters["edges"] = static_cast<double>(g.edges.size());
}

void BM_Chain_FullThenFilter(benchmark::State& state) {
  RunPushdown(state, Shape::kChain, false);
}
void BM_Chain_SeededPushdown(benchmark::State& state) {
  RunPushdown(state, Shape::kChain, true);
}
void BM_Dag_FullThenFilter(benchmark::State& state) {
  RunPushdown(state, Shape::kDag, false);
}
void BM_Dag_SeededPushdown(benchmark::State& state) {
  RunPushdown(state, Shape::kDag, true);
}
void BM_Random_FullThenFilter(benchmark::State& state) {
  RunPushdown(state, Shape::kRandom, false);
}
void BM_Random_SeededPushdown(benchmark::State& state) {
  RunPushdown(state, Shape::kRandom, true);
}

BENCHMARK(BM_Chain_FullThenFilter)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_SeededPushdown)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dag_FullThenFilter)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dag_SeededPushdown)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random_FullThenFilter)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random_SeededPushdown)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

// Selectivity sweep: the query binds one of `k` distinct sources on a
// layered DAG; the narrower the slice, the bigger the pushdown win.
void BM_SelectivitySweep(benchmark::State& state) {
  const bool pushdown = state.range(0) != 0;
  const int width = static_cast<int>(state.range(1));
  DatabaseOptions options;
  options.use_capture_rules = pushdown;
  Database db(options);
  workload::EdgeList g = workload::LayeredDag(10, width, 2, 7);
  Must(workload::SetupClosure(&db, "g", g));
  CalcExprPtr query = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Int(0)))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalQuery(query)).size());
  }
}

BENCHMARK(BM_SelectivitySweep)
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 32})
    ->Args({1, 32})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

BENCHMARK_MAIN();
