// Experiment E7 — magic-seed constructor specialization.
//
// A transitive-closure query that binds the source attribute (`v.src = k`)
// only needs the edges reachable from k, yet the unspecialized engine
// materializes the full closure and filters afterwards. The adornment
// analysis (analysis/adorn.h) detects the binding at compile time and the
// specialization plan (core/specialize.h) restricts the fixpoint to the
// relevant-value closure. This benchmark measures the same bound query with
// PRAGMA SPECIALIZE off and on; capture rules are disabled throughout so
// the generic fixpoint engine is isolated (the seeded-TC capture would
// otherwise answer the query before specialization could). Workloads where
// the seed reaches a small fraction of the graph (disjoint chains, shallow
// DAG layers) show the largest gap; a strongly connected graph shows the
// overhead floor, since everything is relevant.

#include <benchmark/benchmark.h>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

/// `count` disjoint chains of `length` nodes each; the seed sits on chain 0,
/// so 1/count of the graph is relevant.
workload::EdgeList DisjointChains(int count, int length) {
  workload::EdgeList g;
  g.node_count = count * length;
  for (int c = 0; c < count; ++c) {
    for (int i = 0; i < length - 1; ++i) {
      g.edges.emplace_back(c * length + i, c * length + i + 1);
    }
  }
  return g;
}

/// The bound closure query `{ EACH v IN g_E {g_tc}: v.src = seed }`.
CalcExprPtr BoundClosureQuery(int seed) {
  return Union({IdentityBranch(
      "v", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("v", "src"), Int(seed)))});
}

void RunBoundClosure(benchmark::State& state, const workload::EdgeList& g,
                     int seed) {
  const bool specialize = state.range(0) != 0;
  DatabaseOptions options;
  options.use_capture_rules = false;  // isolate the generic engine
  options.specialize = specialize;
  Database db(options);
  Must(workload::SetupClosure(&db, "g", g));
  CalcExprPtr query = BoundClosureQuery(seed);
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustValue(db.EvalQuery(query)).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["edges"] = static_cast<double>(g.edges.size());
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["specialize"] = specialize ? 1.0 : 0.0;
  state.counters["pruned"] =
      static_cast<double>(db.last_stats().seed_tuples_pruned);
}

void BM_Specialize_DisjointChains(benchmark::State& state) {
  // 40 chains of 60 nodes; the bound query touches one chain.
  RunBoundClosure(state, DisjointChains(40, 60), /*seed=*/0);
}

void BM_Specialize_LayeredDag(benchmark::State& state) {
  // Part-explosion shape: the seed explodes one root of many.
  RunBoundClosure(state, workload::LayeredDag(8, 64, 2, /*seed=*/29),
                  /*seed=*/0);
}

void BM_Specialize_RandomDigraph(benchmark::State& state) {
  // Sparse random graph: reachability from one node covers a fraction.
  RunBoundClosure(state, workload::RandomDigraph(600, 1100, /*seed=*/31),
                  /*seed=*/0);
}

void BM_Specialize_CycleWorstCase(benchmark::State& state) {
  // A single cycle: every node is reachable from the seed, so the
  // specialized run pays the magic-closure overhead for no pruning.
  RunBoundClosure(state, workload::Cycle(300), /*seed=*/0);
}

BENCHMARK(BM_Specialize_DisjointChains)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Specialize_LayeredDag)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Specialize_RandomDigraph)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Specialize_CycleWorstCase)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

int main(int argc, char** argv) {
  return datacon::bench::RunBenchmarks(argc, argv, "specialize");
}
