// Experiment E6 — the paper's headline claim (abstract, sections 1 and 4):
// "many recursive queries can be evaluated more efficiently within the
// set-construction framework of database systems than with proof-oriented
// methods typical for a rule-based approach."
//
//   * bottomup:      the DataCon engine (semi-naive, capture rules off, so
//                    the generic set-oriented machinery is measured).
//   * topdown:       SLD resolution with OLDT-style tabling (sound and
//                    complete, tuple-at-a-time).
//   * topdown_bound: the same engine answering a single-source query — the
//                    one case where goal-directed search has an edge on
//                    narrow queries (cf. the seeded capture rule, which
//                    gives the set-oriented side the same advantage).
//
// Expected shape: bottomup beats topdown on full-closure queries by a
// growing factor; pure (untabled) SLD cannot even run on cyclic data.

#include <benchmark/benchmark.h>

#include <cmath>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "prolog/sld.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

enum class Shape { kChain, kTree, kRandom };

workload::EdgeList MakeGraph(Shape shape, int n) {
  switch (shape) {
    case Shape::kChain:
      return workload::Chain(n);
    case Shape::kTree:
      return workload::KaryTree(static_cast<int>(std::log2(n)), 2);
    case Shape::kRandom:
      return workload::RandomDigraph(n, 2 * n, 23);
  }
  return workload::Chain(n);
}

void RunBottomUp(benchmark::State& state, Shape shape) {
  const int n = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  Must(workload::SetupClosure(&db, "g", MakeGraph(shape, n)));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  size_t size = 0;
  for (auto _ : state) {
    size = MustValue(db.EvalRange(range)).size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["closure"] = static_cast<double>(size);
}

void RunTopDown(benchmark::State& state, Shape shape) {
  const int n = static_cast<int>(state.range(0));
  Database db;
  Must(workload::SetupClosure(&db, "g", MakeGraph(shape, n)));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  SldOptions options;
  options.tabling = true;
  size_t size = 0;
  SldStats stats;
  for (auto _ : state) {
    size = MustValue(
               EvaluateRangeTopDown(db.catalog(), range, options, {}, &stats))
               .size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["closure"] = static_cast<double>(size);
  state.counters["facts_scanned"] = static_cast<double>(stats.facts_scanned);
}

void RunTopDownSingleSource(benchmark::State& state, Shape shape) {
  const int n = static_cast<int>(state.range(0));
  Database db;
  Must(workload::SetupClosure(&db, "g", MakeGraph(shape, n)));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  SldOptions options;
  options.tabling = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustValue(EvaluateRangeTopDown(db.catalog(), range, options,
                                       {Value::Int(0)}))
            .size());
  }
}

void RunBottomUpSingleSource(benchmark::State& state, Shape shape) {
  const int n = static_cast<int>(state.range(0));
  Database db;  // capture rules ON: the seeded-closure plan
  Must(workload::SetupClosure(&db, "g", MakeGraph(shape, n)));
  CalcExprPtr query = Union({IdentityBranch(
      "r", Constructed(Rel("g_E"), "g_tc"),
      Eq(FieldRef("r", "src"), Int(0)))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalQuery(query)).size());
  }
}

void BM_Chain_BottomUp(benchmark::State& state) {
  RunBottomUp(state, Shape::kChain);
}
void BM_Chain_TopDownTabled(benchmark::State& state) {
  RunTopDown(state, Shape::kChain);
}
void BM_Tree_BottomUp(benchmark::State& state) {
  RunBottomUp(state, Shape::kTree);
}
void BM_Tree_TopDownTabled(benchmark::State& state) {
  RunTopDown(state, Shape::kTree);
}
void BM_Random_BottomUp(benchmark::State& state) {
  RunBottomUp(state, Shape::kRandom);
}
void BM_Random_TopDownTabled(benchmark::State& state) {
  RunTopDown(state, Shape::kRandom);
}
void BM_Chain_SingleSource_TopDown(benchmark::State& state) {
  RunTopDownSingleSource(state, Shape::kChain);
}
void BM_Chain_SingleSource_BottomUpSeeded(benchmark::State& state) {
  RunBottomUpSingleSource(state, Shape::kChain);
}

BENCHMARK(BM_Chain_BottomUp)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_TopDownTabled)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tree_BottomUp)->Arg(63)->Arg(127)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tree_TopDownTabled)->Arg(63)->Arg(127)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random_BottomUp)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random_TopDownTabled)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_SingleSource_TopDown)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_SingleSource_BottomUpSeeded)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

BENCHMARK_MAIN();
