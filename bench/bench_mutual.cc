// Experiment E4 — mutual recursion (section 3.1's ahead/above system).
//
// The mutually recursive constructors are evaluated as one simultaneous
// fixpoint over the application component {Infront{ahead(Ontop)},
// Ontop{above(Infront)}} (section 3.2). Sweeps the scene size and compares
// the paper's Jacobi loop (naive) against the differential engine.
//
// Expected shape: both converge in the same number of rounds; semi-naive
// does asymptotically less per-round work, so the gap widens with scene
// size.

#include <benchmark/benchmark.h>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

void RunMutual(benchmark::State& state, FixpointStrategy strategy) {
  const int objects = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.eval.strategy = strategy;
  options.use_capture_rules = false;
  Database db(options);
  // Sparse facts: ~1.3 edges per object in each relation keeps recursion
  // depth interesting without quadratic blowup.
  Must(workload::SetupCadScene(&db, objects, (objects * 13) / 10,
                               (objects * 13) / 10, /*seed=*/42));
  RangePtr range = Constructed(Rel("Infront"), "ahead", {Rel("Ontop")});
  size_t size = 0;
  for (auto _ : state) {
    size = MustValue(db.EvalRange(range)).size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["ahead"] = static_cast<double>(size);
  state.counters["rounds"] = static_cast<double>(db.last_stats().iterations);
}

void BM_Mutual_Naive(benchmark::State& state) {
  RunMutual(state, FixpointStrategy::kNaive);
}
void BM_Mutual_SemiNaive(benchmark::State& state) {
  RunMutual(state, FixpointStrategy::kSemiNaive);
}

BENCHMARK(BM_Mutual_Naive)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mutual_SemiNaive)->Arg(20)->Arg(40)->Arg(80)->Arg(160)->Unit(benchmark::kMillisecond);

// The mutual system against a hand-merged single constructor computing the
// same `ahead` relation over the union graph — the rewriting the section
// 3.4 lemma uses ("mutual recursion can be replaced by a single fixed
// point operator"). Measures the overhead of keeping the system factored.
void BM_Mutual_MergedSingleConstructor(benchmark::State& state) {
  const int objects = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  Must(workload::SetupCadScene(&db, objects, (objects * 13) / 10,
                               (objects * 13) / 10, /*seed=*/42));
  // merged FOR Rel: infrontrel (OT: ontoprel): aheadrel computes `ahead`
  // directly over the union: a pair extends through either relation.
  // reach = Infront ∪ {<r.front, q.tail> | r IN Infront, q IN reach-from-back}
  // Implemented as: merged = identity ∪ join with merged through Infront
  // steps ∪ join with merged through Ontop steps, where the Ontop steps
  // feed a second merged2 over Ontop — still two constructors, but with
  // result types unified to aheadrel so a single projection shape is used.
  Must(db.DefineConstructorGroup({
      std::make_shared<ConstructorDecl>(
          "reach_if", FormalRelation{"Rel", "infrontrel"},
          std::vector<FormalRelation>{{"OT", "ontoprel"}},
          std::vector<FormalScalar>{}, "aheadrel",
          Union({IdentityBranch("r", Rel("Rel"), True()),
                 MakeBranch({FieldRef("r", "front"), FieldRef("q", "tail")},
                            {Each("r", Rel("Rel")),
                             Each("q", Constructed(Rel("Rel"), "reach_if",
                                                   {Rel("OT")}))},
                            Eq(FieldRef("r", "back"), FieldRef("q", "head"))),
                 MakeBranch({FieldRef("r", "front"), FieldRef("q", "tail")},
                            {Each("r", Rel("Rel")),
                             Each("q", Constructed(Rel("OT"), "reach_ot",
                                                   {Rel("Rel")}))},
                            Eq(FieldRef("r", "back"), FieldRef("q", "head")))})),
      std::make_shared<ConstructorDecl>(
          "reach_ot", FormalRelation{"Rel", "ontoprel"},
          std::vector<FormalRelation>{{"IF", "infrontrel"}},
          std::vector<FormalScalar>{}, "aheadrel",
          Union({MakeBranch({FieldRef("r", "top"), FieldRef("r", "base")},
                            {Each("r", Rel("Rel"))}, True()),
                 MakeBranch({FieldRef("r", "top"), FieldRef("q", "tail")},
                            {Each("r", Rel("Rel")),
                             Each("q", Constructed(Rel("Rel"), "reach_ot",
                                                   {Rel("IF")}))},
                            Eq(FieldRef("r", "base"), FieldRef("q", "head"))),
                 MakeBranch({FieldRef("r", "top"), FieldRef("q", "tail")},
                            {Each("r", Rel("Rel")),
                             Each("q", Constructed(Rel("IF"), "reach_if",
                                                   {Rel("Rel")}))},
                            Eq(FieldRef("r", "base"), FieldRef("q", "head")))})),
  }));
  RangePtr range = Constructed(Rel("Infront"), "reach_if", {Rel("Ontop")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalRange(range)).size());
  }
}

BENCHMARK(BM_Mutual_MergedSingleConstructor)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

BENCHMARK_MAIN();
