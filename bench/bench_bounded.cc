// Experiment E3 — bounded unrolling (section 3.1's ahead_n) versus the
// recursive least fixpoint (ahead).
//
// ahead_n is generated as a tower of non-recursive constructors
// (ahead_2 joins the base with itself; ahead_k joins the base with
// ahead_{k-1}); the unbounded `ahead` is the recursive constructor. On a
// chain of length L, ahead_k is complete only for k >= L; the bench shows
// the cost of unrolling growing linearly in k while the fixpoint pays only
// for the rounds the data actually needs — the reason the paper introduces
// recursion rather than asking programmers to pick n.

#include <benchmark/benchmark.h>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

/// Defines ahead_2 .. ahead_<max_k> as non-recursive towers over prefix g.
Status DefineTower(Database* db, int max_k) {
  for (int k = 2; k <= max_k; ++k) {
    std::string name = "ahead_" + std::to_string(k);
    RangePtr step_range = k == 2
                              ? Rel("Rel")
                              : Constructed(Rel("Rel"),
                                            "ahead_" + std::to_string(k - 1));
    auto body = Union(
        {IdentityBranch("r", Rel("Rel"), True()),
         MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                    {Each("f", Rel("Rel")), Each("b", step_range)},
                    Eq(FieldRef("f", "dst"), FieldRef("b", "src")))});
    DATACON_RETURN_IF_ERROR(
        db->DefineConstructor(std::make_shared<ConstructorDecl>(
            name, FormalRelation{"Rel", "g_edgerel"},
            std::vector<FormalRelation>{}, std::vector<FormalScalar>{},
            "g_edgerel", body)));
  }
  return Status::OK();
}

void BM_BoundedUnrolling(benchmark::State& state) {
  const int n = 48;  // chain length (diameter 47)
  const int k = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.use_capture_rules = false;
  options.inline_nonrecursive = false;  // measure the materializing form
  Database db(options);
  Must(workload::SetupClosure(&db, "g", workload::Chain(n)));
  Must(DefineTower(&db, k));
  RangePtr range = Constructed(Rel("g_E"), "ahead_" + std::to_string(k));
  size_t size = 0;
  for (auto _ : state) {
    size = MustValue(db.EvalRange(range)).size();
    benchmark::DoNotOptimize(size);
  }
  // Completeness indicator: how much of the true closure ahead_k covers.
  state.counters["pairs"] = static_cast<double>(size);
}

void BM_RecursiveFixpoint(benchmark::State& state) {
  const int n = 48;
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  Must(workload::SetupClosure(&db, "g", workload::Chain(n)));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  size_t size = 0;
  for (auto _ : state) {
    size = MustValue(db.EvalRange(range)).size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["pairs"] = static_cast<double>(size);
}

// Crossover: on shallow data (diameter 6), a shallow unrolling is complete
// and competitive; the fixpoint stops by itself at the data's depth.
void BM_BoundedOnShallowData(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.use_capture_rules = false;
  options.inline_nonrecursive = false;
  Database db(options);
  Must(workload::SetupClosure(&db, "g", workload::KaryTree(5, 2)));
  Must(DefineTower(&db, k));
  RangePtr range = Constructed(Rel("g_E"), "ahead_" + std::to_string(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalRange(range)).size());
  }
}

void BM_FixpointOnShallowData(benchmark::State& state) {
  DatabaseOptions options;
  options.use_capture_rules = false;
  Database db(options);
  Must(workload::SetupClosure(&db, "g", workload::KaryTree(5, 2)));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalRange(range)).size());
  }
}

BENCHMARK(BM_BoundedUnrolling)->Arg(2)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecursiveFixpoint)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BoundedOnShallowData)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FixpointOnShallowData)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

BENCHMARK_MAIN();
