// Experiment E9 — the storage substrate (section 2.2's keyed relations).
//
// Micro-benchmarks for the operations every higher layer leans on: tuple
// hashing, insertion with and without a declared key, membership probes,
// hash-index construction and probing, and the checked whole-relation
// assignment.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace datacon {
namespace {

using bench::Must;
using bench::MustValue;

Schema SetSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
}

Schema KeyedSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}, {0});
}

Relation Filled(const Schema& schema, int n) {
  Relation r(schema);
  for (int i = 0; i < n; ++i) {
    Must(r.Insert(Tuple({Value::Int(i), Value::Int(i * 7 % n)})).status());
  }
  return r;
}

void BM_InsertSetSemantics(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Relation r(SetSchema());
    for (int i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          MustValue(r.Insert(Tuple({Value::Int(i), Value::Int(i)}))));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_InsertKeyed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Relation r(KeyedSchema());
    for (int i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          MustValue(r.Insert(Tuple({Value::Int(i), Value::Int(i)}))));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_InsertDuplicates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation r = Filled(SetSchema(), n);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustValue(r.Insert(Tuple({Value::Int(i), Value::Int(i * 7 % n)}))));
    i = (i + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Contains(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation r = Filled(SetSchema(), n);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Contains(Tuple({Value::Int(i), Value::Int(i)})));
    i = (i + 1) % (2 * n);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_KeyViolationDetection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation r = Filled(KeyedSchema(), n);
  int i = 0;
  for (auto _ : state) {
    // Same key, different payload: must be detected, not inserted.
    Result<bool> result = r.Insert(Tuple({Value::Int(i), Value::Int(-1)}));
    benchmark::DoNotOptimize(result.status().code());
    i = (i + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BuildHashIndex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation r = Filled(SetSchema(), n);
  for (auto _ : state) {
    HashIndex index(r, {1});
    benchmark::DoNotOptimize(index.key_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ProbeHashIndex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation r = Filled(SetSchema(), n);
  HashIndex index(r, {0});
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Probe(Tuple({Value::Int(i)})).size());
    i = (i + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CheckedAssignment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation value = Filled(SetSchema(), n);
  for (auto _ : state) {
    Relation target(KeyedSchema());
    Must(target.InsertAll(value));
    benchmark::DoNotOptimize(target.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_InsertSetSemantics)->Arg(1000)->Arg(100000);
BENCHMARK(BM_InsertKeyed)->Arg(1000)->Arg(100000);
BENCHMARK(BM_InsertDuplicates)->Arg(100000);
BENCHMARK(BM_Contains)->Arg(100000);
BENCHMARK(BM_KeyViolationDetection)->Arg(100000);
BENCHMARK(BM_BuildHashIndex)->Arg(1000)->Arg(100000);
BENCHMARK(BM_ProbeHashIndex)->Arg(100000);
BENCHMARK(BM_CheckedAssignment)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace datacon

BENCHMARK_MAIN();
