// Experiment E12 — the incremental constructor-application cache.
//
// Three regimes of the same chain-closure workload:
//
//  - cold:   PRAGMA CACHE = OFF. Every repeat of the query pays the full
//            semi-naive fixpoint — the pre-cache behavior and the baseline.
//  - warm:   PRAGMA CACHE = ON, repeat an unchanged query. After the first
//            fill, every repeat is a generation-validated hit that installs
//            the shared materialization without evaluating anything.
//  - churn:  one fresh disjoint edge is inserted before each repeat. With
//            the cache ON the insert-only delta is replayed through the
//            semi-naive seed round (work proportional to the delta); OFF
//            recomputes the whole closure from scratch.
//
// The warm/cold gap is the headline number (a hit must be orders of
// magnitude cheaper than the fixpoint); the churn ON/OFF gap shows delta
// maintenance beating full recomputation. Capture rules are disabled
// throughout so the generic fixpoint engine (and its component cache path)
// is isolated.

#include <benchmark/benchmark.h>

#include <memory>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

constexpr int kChain = 192;

/// The unbound closure query `{ EACH v IN g_E {g_tc}: TRUE }`.
CalcExprPtr ClosureQuery() {
  return Union(
      {IdentityBranch("v", Constructed(Rel("g_E"), "g_tc"), True())});
}

/// `{ EACH v IN g_E {g_tc}: v.src = 0 }` — an analytic probe whose answer
/// is one chain's worth of tuples but whose evaluation (unspecialized)
/// still needs the full closure. Keeps the per-repeat result
/// materialization small, so the repeat-query benchmark measures the
/// fixpoint-vs-hit gap rather than output copying.
CalcExprPtr BoundClosureQuery() {
  return Union({IdentityBranch("v", Constructed(Rel("g_E"), "g_tc"),
                               Eq(FieldRef("v", "src"), Int(0)))});
}

std::unique_ptr<Database> MakeDb(bool cache_on) {
  DatabaseOptions options;
  options.use_capture_rules = false;  // isolate the generic engine
  options.specialize = false;  // no magic-seed pruning: measure cache only
  options.cache = cache_on;
  auto db = std::make_unique<Database>(options);
  Must(workload::SetupClosure(db.get(), "g", workload::Chain(kChain)));
  return db;
}

void ExportCacheCounters(benchmark::State& state, const Database& db,
                         size_t rows) {
  const MatCacheStats& stats = db.mat_cache().stats();
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_misses"] = static_cast<double>(stats.misses);
  state.counters["delta_maintained"] =
      static_cast<double>(stats.delta_maintained);
}

/// Cold (Arg 0) vs warm (Arg 1): the identical query repeated against an
/// unchanged database. The first (filling) evaluation runs outside the
/// timing loop in both configurations so the loop measures steady state.
void BM_Cache_RepeatQuery(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  std::unique_ptr<Database> db = MakeDb(cache_on);
  CalcExprPtr query = BoundClosureQuery();
  size_t rows = MustValue(db->EvalQuery(query)).size();
  for (auto _ : state) {
    rows = MustValue(db->EvalQuery(query)).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["cache"] = cache_on ? 1.0 : 0.0;
  ExportCacheCounters(state, *db, rows);
}

/// Insert-only churn: one fresh disjoint edge lands before every repeat,
/// so each evaluation sees a one-tuple base delta. ON delta-maintains the
/// cached closure; OFF recomputes it fully.
void BM_Cache_InsertChurn(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  std::unique_ptr<Database> db = MakeDb(cache_on);
  CalcExprPtr query = ClosureQuery();
  size_t rows = MustValue(db->EvalQuery(query)).size();
  // Fresh node ids beyond the chain keep every inserted edge disjoint:
  // the closure grows by exactly one tuple per iteration.
  int64_t next_node = kChain;
  for (auto _ : state) {
    Must(db->Insert(
        "g_E", Tuple({Value::Int(next_node), Value::Int(next_node + 1)})));
    next_node += 2;
    rows = MustValue(db->EvalQuery(query)).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["cache"] = cache_on ? 1.0 : 0.0;
  ExportCacheCounters(state, *db, rows);
}

/// The fill cost itself: a cold evaluation that also stores the entry,
/// measured against a database whose cache is off. Quantifies the
/// write-side overhead a first run pays for later hits.
void BM_Cache_FirstFill(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<Database> db = MakeDb(cache_on);
    CalcExprPtr query = ClosureQuery();
    state.ResumeTiming();
    size_t rows = MustValue(db->EvalQuery(query)).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["cache"] = cache_on ? 1.0 : 0.0;
}

BENCHMARK(BM_Cache_RepeatQuery)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cache_InsertChurn)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cache_FirstFill)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

int main(int argc, char** argv) {
  return datacon::bench::RunBenchmarks(argc, argv, "cache");
}
