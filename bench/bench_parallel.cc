// Experiment E6 — parallel branch execution.
//
// The fixpoint engine chunks the outermost scan of every branch across a
// worker pool; each chunk runs the remaining join/filter pipeline into a
// thread-local relation and the chunks are merged under set semantics. This
// benchmark measures the same workloads at 1/2/4/8 worker threads:
// transitive closure over chain and random graphs (n >= 2000 edges) and the
// non-closure-shaped same-generation recursion. Speedup is bounded by the
// machine's core count — on a single-core host every thread count performs
// like the serial path plus a small merge overhead.

#include <benchmark/benchmark.h>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

void RunClosure(benchmark::State& state, const workload::EdgeList& g) {
  const size_t threads = static_cast<size_t>(state.range(0));
  DatabaseOptions options;
  options.use_capture_rules = false;  // isolate the generic engine
  options.eval.exec.num_threads = threads;
  Database db(options);
  Must(workload::SetupClosure(&db, "g", g));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  size_t closure_size = 0;
  for (auto _ : state) {
    closure_size = MustValue(db.EvalRange(range)).size();
    benchmark::DoNotOptimize(closure_size);
  }
  state.counters["edges"] = static_cast<double>(g.edges.size());
  state.counters["closure"] = static_cast<double>(closure_size);
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_Parallel_ChainClosure(benchmark::State& state) {
  RunClosure(state, workload::Chain(256));
}

void BM_Parallel_RandomClosure(benchmark::State& state) {
  // n >= 2000 edges: the acceptance workload for the parallel executor.
  RunClosure(state, workload::RandomDigraph(700, 2100, /*seed=*/17));
}

void BM_Parallel_WideRandomClosure(benchmark::State& state) {
  RunClosure(state, workload::RandomDigraph(2000, 6000, /*seed=*/23));
}

Status SetupSameGeneration(Database* db, const workload::EdgeList& tree) {
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "uprel",
      Schema({{"child", ValueType::kInt}, {"parent", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "pairrel", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("Up", "uprel"));
  for (const auto& [parent, child] : tree.edges) {
    DATACON_RETURN_IF_ERROR(
        db->Insert("Up", Tuple({Value::Int(child), Value::Int(parent)})));
  }
  auto body = Union(
      {MakeBranch({FieldRef("u", "child"), FieldRef("v", "child")},
                  {Each("u", Rel("Rel")), Each("v", Rel("Rel"))},
                  Eq(FieldRef("u", "parent"), FieldRef("v", "parent"))),
       MakeBranch({FieldRef("u", "child"), FieldRef("v", "child")},
                  {Each("u", Rel("Rel")), Each("v", Rel("Rel")),
                   Each("s", Constructed(Rel("Rel"), "same_gen"))},
                  And({Eq(FieldRef("u", "parent"), FieldRef("s", "x")),
                       Eq(FieldRef("s", "y"), FieldRef("v", "parent"))}))});
  return db->DefineConstructor(std::make_shared<ConstructorDecl>(
      "same_gen", FormalRelation{"Rel", "uprel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "pairrel",
      body));
}

void BM_Parallel_SameGeneration(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  DatabaseOptions options;
  options.eval.exec.num_threads = threads;
  Database db(options);
  Must(SetupSameGeneration(&db, workload::KaryTree(/*depth=*/10, 2)));
  RangePtr range = Constructed(Rel("Up"), "same_gen");
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = MustValue(db.EvalRange(range)).size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["threads"] = static_cast<double>(threads);
}

BENCHMARK(BM_Parallel_ChainClosure)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parallel_RandomClosure)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parallel_WideRandomClosure)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parallel_SameGeneration)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

int main(int argc, char** argv) {
  return datacon::bench::RunBenchmarks(argc, argv, "parallel");
}
