// Experiment E1 — selectors as factored-out conditions (section 2.3,
// Fig. 1).
//
// Measures (a) materializing a selected subrelation vs an equivalent
// inline-predicate query — the abstraction must be free; (b) the
// conditional assignment through a selector (the section 2.3 run-time
// integrity test), including the referential-integrity selector with an
// embedded SOME over a second relation; (c) repeated evaluation of a
// selected range, which the evaluator serves from its source cache.

#include <benchmark/benchmark.h>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

void Setup(Database* db, int n) {
  Must(workload::SetupClosure(db, "g", workload::RandomDigraph(n, 4 * n, 3)));
  auto sel = std::make_shared<SelectorDecl>(
      "from", FormalRelation{"Rel", "g_edgerel"},
      std::vector<FormalScalar>{{"s", ValueType::kInt}}, "r",
      Eq(FieldRef("r", "src"), Param("s")));
  Must(db->DefineSelector(sel));
}

void BM_SelectedRange(benchmark::State& state) {
  Database db;
  Setup(&db, static_cast<int>(state.range(0)));
  RangePtr range = Selected(Rel("g_E"), "from", {Int(1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalRange(range)).size());
  }
}

void BM_EquivalentInlinePredicate(benchmark::State& state) {
  Database db;
  Setup(&db, static_cast<int>(state.range(0)));
  CalcExprPtr query = Union({IdentityBranch(
      "r", Rel("g_E"), Eq(FieldRef("r", "src"), Int(1)))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalQuery(query)).size());
  }
}

BENCHMARK(BM_SelectedRange)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EquivalentInlinePredicate)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_SelectorGuardedAssignment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db;
  Setup(&db, n);
  Relation valid = MustValue(
      db.EvalRange(Selected(Rel("g_E"), "from", {Int(1)})));
  for (auto _ : state) {
    Must(db.AssignThroughSelector("g_E", "from", {Value::Int(1)}, valid));
    state.PauseTiming();
    // Restore the full relation for the next iteration.
    Must(workload::LoadEdges(&db, "g_E",
                             workload::RandomDigraph(n, 4 * n, 3)));
    state.ResumeTiming();
  }
}

BENCHMARK(BM_SelectorGuardedAssignment)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Referential integrity (the section 2.3 refint selector): each checked
// tuple runs two existential quantifiers over Objects.
void BM_ReferentialIntegrityCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db;
  Must(db.DefineRelationType(
      "objectrel", Schema({{"part", ValueType::kInt}}, {0})));
  Must(db.DefineRelationType(
      "linkrel",
      Schema({{"front", ValueType::kInt}, {"back", ValueType::kInt}})));
  Must(db.CreateRelation("Objects", "objectrel"));
  Must(db.CreateRelation("Links", "linkrel"));
  for (int i = 0; i < n; ++i) {
    Must(db.Insert("Objects", Tuple({Value::Int(i)})));
  }
  workload::EdgeList g = workload::RandomDigraph(n, 2 * n, 9);
  Must(workload::LoadEdges(&db, "Links", g));
  auto refint = std::make_shared<SelectorDecl>(
      "refint", FormalRelation{"Rel", "linkrel"},
      std::vector<FormalScalar>{}, "r",
      And({Some("r1", Rel("Objects"),
                Eq(FieldRef("r", "front"), FieldRef("r1", "part"))),
           Some("r2", Rel("Objects"),
                Eq(FieldRef("r", "back"), FieldRef("r2", "part")))}));
  Must(db.DefineSelector(refint));
  const Relation& links = *MustValue(db.GetRelation("Links"));
  for (auto _ : state) {
    Must(db.AssignThroughSelector("Links", "refint", {}, links));
  }
  state.counters["links"] = static_cast<double>(g.edges.size());
}

BENCHMARK(BM_ReferentialIntegrityCheck)->Arg(200)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Section 4: the evaluator caches materialized selector chains over stable
// sources — the second evaluation of the same selected range inside one
// query is free.
void BM_SelectedRangeInsideQuantifier(benchmark::State& state) {
  Database db;
  Setup(&db, 2000);
  // EACH r IN sel: SOME q IN sel (q.dst = r.src) — the quantifier range
  // resolves the same selected source for every outer row; the cache makes
  // this linear instead of quadratic in materialization work.
  CalcExprPtr query = Union({IdentityBranch(
      "r", Selected(Rel("g_E"), "from", {Int(1)}),
      Some("q", Selected(Rel("g_E"), "from", {Int(1)}),
           Eq(FieldRef("q", "dst"), FieldRef("r", "src"))))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalQuery(query)).size());
  }
}

BENCHMARK(BM_SelectedRangeInsideQuantifier)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacon

BENCHMARK_MAIN();
