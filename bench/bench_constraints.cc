// Experiment E13 — compile-time constraint simplification under insert
// churn.
//
// One edge relation carrying K = 5 integrity constraints (a key, a
// self-loop denial, two equijoin self-join denials, and an
// inequality-only ordering denial), fed one fresh disjoint edge per
// iteration. The A/B lever is DatabaseOptions::constraints_simplify:
//
//  - full (Arg 0):       every insert re-evaluates each constraint's whole
//                        denial — the equijoin denials are O(n) hash
//                        joins, the ordering denial an O(n^2) nested
//                        loop, per insert.
//  - simplified (Arg 1): every insert runs the compiled residues instead,
//                        each a parameter-bound query seeded with the
//                        inserted tuple's attributes — O(n) scans at worst.
//
// The headline number is the full/simplified ratio on BM_Constraints_
// InsertChurn (the acceptance gate asks for >= 5x); counters export how
// many checks ran in each regime. BM_Constraints_Overhead isolates the
// absolute cost of checking against a constraint-free database.

#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/constraint.h"
#include "ast/builder.h"
#include "ast/decl.h"
#include "bench_util.h"
#include "common/metrics.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;

// Large enough that a full denial re-evaluation (hash joins for the
// equijoin denials, a nested loop for the ordering denial) clearly
// dominates the per-tuple residue scans, small enough that one full
// recheck stays well under a second in debug builds.
constexpr int kChain = 2048;

/// `DENY EACH p IN c_E: p.src = p.dst` — cheap in both regimes.
ConstraintDeclPtr NoSelfLoop() {
  return std::make_shared<const ConstraintDecl>(
      "no_self_loop", std::vector<Binding>{Each("p", Rel("c_E"))},
      Eq(FieldRef("p", "src"), FieldRef("p", "dst")));
}

/// `DENY EACH a IN c_E, EACH b IN c_E: a.dst = b.dst AND a.src <> b.src`
/// — converging edges; a full recheck is a self-join.
ConstraintDeclPtr NoConverge() {
  return std::make_shared<const ConstraintDecl>(
      "no_converge",
      std::vector<Binding>{Each("a", Rel("c_E")), Each("b", Rel("c_E"))},
      And({Eq(FieldRef("a", "dst"), FieldRef("b", "dst")),
           Ne(FieldRef("a", "src"), FieldRef("b", "src"))}));
}

/// `DENY EACH a IN c_E, EACH b IN c_E: a.src = b.dst AND a.dst = b.src`
/// — no 2-cycles; another self-join denial.
ConstraintDeclPtr NoTwoCycle() {
  return std::make_shared<const ConstraintDecl>(
      "no_two_cycle",
      std::vector<Binding>{Each("a", Rel("c_E")), Each("b", Rel("c_E"))},
      And({Eq(FieldRef("a", "src"), FieldRef("b", "dst")),
           Eq(FieldRef("a", "dst"), FieldRef("b", "src"))}));
}

/// `KEY <src> ON c_E` — at most one outgoing edge per node.
ConstraintDeclPtr SrcKey() {
  return std::make_shared<const ConstraintDecl>(
      "src_key", std::vector<std::string>{"src"}, "c_E");
}

/// `DENY EACH a IN c_E, EACH b IN c_E: a.src < b.src AND b.dst < a.dst`
/// — an ordering constraint (edges may not invert: a later source cannot
/// reach an earlier destination). No equality conjunct means no hash key,
/// so a full recheck is a genuine nested-loop self-join — the class of
/// constraint Nicolas-style simplification exists for.
ConstraintDeclPtr NoInversion() {
  return std::make_shared<const ConstraintDecl>(
      "no_inversion",
      std::vector<Binding>{Each("a", Rel("c_E")), Each("b", Rel("c_E"))},
      And({Lt(FieldRef("a", "src"), FieldRef("b", "src")),
           Lt(FieldRef("b", "dst"), FieldRef("a", "dst"))}));
}

std::unique_ptr<Database> MakeDb(bool with_constraints, bool simplify) {
  DatabaseOptions options;
  options.cache = false;  // isolate constraint checking from the mat-cache
  options.constraints_simplify = simplify;
  auto db = std::make_unique<Database>(options);
  Must(workload::SetupClosure(db.get(), "c", workload::Chain(kChain)));
  if (with_constraints) {
    Must(db->DefineConstraint(NoSelfLoop()));
    Must(db->DefineConstraint(NoConverge()));
    Must(db->DefineConstraint(NoTwoCycle()));
    Must(db->DefineConstraint(SrcKey()));
    Must(db->DefineConstraint(NoInversion()));
  }
  return db;
}

void ExportConstraintCounters(benchmark::State& state, Database* db) {
  MetricsRegistry& registry = db->metrics();
  state.counters["checks"] =
      static_cast<double>(registry.GetCounter("constraints.checks")->value());
  state.counters["simplified"] = static_cast<double>(
      registry.GetCounter("constraints.simplified")->value());
  state.counters["full_rechecks"] = static_cast<double>(
      registry.GetCounter("constraints.full_rechecks")->value());
  state.counters["violations"] = static_cast<double>(
      registry.GetCounter("constraints.violations")->value());
}

/// Full recheck (Arg 0) vs simplified residues (Arg 1): one fresh disjoint
/// edge per iteration, K = 5 constraints re-checked per insert.
void BM_Constraints_InsertChurn(benchmark::State& state) {
  const bool simplify = state.range(0) != 0;
  std::unique_ptr<Database> db = MakeDb(/*with_constraints=*/true, simplify);
  // Fresh node ids beyond the chain keep every inserted edge disjoint, so
  // all four constraints stay satisfied and no rollback path runs.
  int64_t next_node = 10 * kChain;
  for (auto _ : state) {
    Must(db->Insert(
        "c_E", Tuple({Value::Int(next_node), Value::Int(next_node + 1)})));
    next_node += 2;
  }
  state.counters["simplify"] = simplify ? 1.0 : 0.0;
  ExportConstraintCounters(state, db.get());
}

/// The absolute overhead of checking: the same churn against a database
/// with no constraints at all (Arg 0) vs the simplified regime (Arg 1).
void BM_Constraints_Overhead(benchmark::State& state) {
  const bool with_constraints = state.range(0) != 0;
  std::unique_ptr<Database> db =
      MakeDb(with_constraints, /*simplify=*/true);
  int64_t next_node = 10 * kChain;
  for (auto _ : state) {
    Must(db->Insert(
        "c_E", Tuple({Value::Int(next_node), Value::Int(next_node + 1)})));
    next_node += 2;
  }
  state.counters["constraints"] = with_constraints ? 1.0 : 0.0;
  ExportConstraintCounters(state, db.get());
}

BENCHMARK(BM_Constraints_InsertChurn)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Constraints_Overhead)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

int main(int argc, char** argv) {
  return datacon::bench::RunBenchmarks(argc, argv, "constraints");
}
