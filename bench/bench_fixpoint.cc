// Experiment E2 — evaluation strategies for recursive constructors
// (section 3.2's REPEAT loop vs section 4's compiled evaluation vs the
// transitive-closure capture rule).
//
// The paper's claim: recognizing the recursion at compile time and
// generating an appropriate fixpoint algorithm beats the naive loop; a
// capture rule specializing the closure beats the generic fixpoint again.
// Expected shape: naive >> semi-naive > capture, with the gap growing with
// the recursion depth of the data (chain worst, tree mild).

#include <benchmark/benchmark.h>

#include <cmath>

#include "ast/builder.h"
#include "bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

enum class Shape { kChain, kTree, kRandom };

workload::EdgeList MakeGraph(Shape shape, int n) {
  switch (shape) {
    case Shape::kChain:
      return workload::Chain(n);
    case Shape::kTree:
      return workload::KaryTree(/*depth=*/1, /*fanout=*/2).node_count > n
                 ? workload::Chain(n)
                 : workload::KaryTree(
                       /*depth=*/static_cast<int>(std::log2(n)), 2);
    case Shape::kRandom:
      return workload::RandomDigraph(n, 2 * n, /*seed=*/17);
  }
  return workload::Chain(n);
}

void RunClosure(benchmark::State& state, Shape shape,
                FixpointStrategy strategy, bool capture) {
  const int n = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.eval.strategy = strategy;
  options.use_capture_rules = capture;
  Database db(options);
  workload::EdgeList g = MakeGraph(shape, n);
  Must(workload::SetupClosure(&db, "g", g));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");

  size_t closure_size = 0;
  for (auto _ : state) {
    Relation r = MustValue(db.EvalRange(range));
    closure_size = r.size();
    benchmark::DoNotOptimize(closure_size);
  }
  state.counters["edges"] = static_cast<double>(g.edges.size());
  state.counters["closure"] = static_cast<double>(closure_size);
  state.counters["rounds"] = static_cast<double>(db.last_stats().iterations);
}

void BM_Chain_Naive(benchmark::State& state) {
  RunClosure(state, Shape::kChain, FixpointStrategy::kNaive, false);
}
void BM_Chain_SemiNaive(benchmark::State& state) {
  RunClosure(state, Shape::kChain, FixpointStrategy::kSemiNaive, false);
}
void BM_Chain_Capture(benchmark::State& state) {
  RunClosure(state, Shape::kChain, FixpointStrategy::kSemiNaive, true);
}
void BM_Tree_Naive(benchmark::State& state) {
  RunClosure(state, Shape::kTree, FixpointStrategy::kNaive, false);
}
void BM_Tree_SemiNaive(benchmark::State& state) {
  RunClosure(state, Shape::kTree, FixpointStrategy::kSemiNaive, false);
}
void BM_Tree_Capture(benchmark::State& state) {
  RunClosure(state, Shape::kTree, FixpointStrategy::kSemiNaive, true);
}
void BM_Random_Naive(benchmark::State& state) {
  RunClosure(state, Shape::kRandom, FixpointStrategy::kNaive, false);
}
void BM_Random_SemiNaive(benchmark::State& state) {
  RunClosure(state, Shape::kRandom, FixpointStrategy::kSemiNaive, false);
}
void BM_Random_Capture(benchmark::State& state) {
  RunClosure(state, Shape::kRandom, FixpointStrategy::kSemiNaive, true);
}

BENCHMARK(BM_Chain_Naive)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_SemiNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_Capture)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tree_Naive)->Arg(63)->Arg(255)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tree_SemiNaive)->Arg(63)->Arg(255)->Arg(1023)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tree_Capture)->Arg(63)->Arg(255)->Arg(1023)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random_Naive)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random_SemiNaive)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random_Capture)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

// Same-generation: recursive but NOT closure-shaped — the capture rule
// cannot fire, so this isolates the generic engines on a harder recursion.
Status SetupSameGeneration(Database* db, const workload::EdgeList& tree) {
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "uprel",
      Schema({{"child", ValueType::kInt}, {"parent", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "pairrel", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("Up", "uprel"));
  for (const auto& [parent, child] : tree.edges) {
    DATACON_RETURN_IF_ERROR(
        db->Insert("Up", Tuple({Value::Int(child), Value::Int(parent)})));
  }
  auto body = Union(
      {MakeBranch({FieldRef("u", "child"), FieldRef("v", "child")},
                  {Each("u", Rel("Rel")), Each("v", Rel("Rel"))},
                  Eq(FieldRef("u", "parent"), FieldRef("v", "parent"))),
       MakeBranch({FieldRef("u", "child"), FieldRef("v", "child")},
                  {Each("u", Rel("Rel")), Each("v", Rel("Rel")),
                   Each("s", Constructed(Rel("Rel"), "same_gen"))},
                  And({Eq(FieldRef("u", "parent"), FieldRef("s", "x")),
                       Eq(FieldRef("s", "y"), FieldRef("v", "parent"))}))});
  return db->DefineConstructor(std::make_shared<ConstructorDecl>(
      "same_gen", FormalRelation{"Rel", "uprel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "pairrel",
      body));
}

void RunSameGeneration(benchmark::State& state, FixpointStrategy strategy) {
  const int depth = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.eval.strategy = strategy;
  Database db(options);
  Must(SetupSameGeneration(&db, workload::KaryTree(depth, 2)));
  RangePtr range = Constructed(Rel("Up"), "same_gen");
  size_t size = 0;
  for (auto _ : state) {
    size = MustValue(db.EvalRange(range)).size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["pairs"] = static_cast<double>(size);
}

void BM_SameGen_Naive(benchmark::State& state) {
  RunSameGeneration(state, FixpointStrategy::kNaive);
}
void BM_SameGen_SemiNaive(benchmark::State& state) {
  RunSameGeneration(state, FixpointStrategy::kSemiNaive);
}

BENCHMARK(BM_SameGen_Naive)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SameGen_SemiNaive)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

// Ablation: the hash-join acceleration inside branch execution (a DESIGN.md
// design choice) against pure filtered nested loops.
void BM_Ablation_HashJoins(benchmark::State& state) {
  const bool hash_joins = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  DatabaseOptions options;
  options.use_capture_rules = false;
  options.eval.exec.use_hash_joins = hash_joins;
  Database db(options);
  Must(workload::SetupClosure(&db, "g", workload::Chain(n)));
  RangePtr range = Constructed(Rel("g_E"), "g_tc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustValue(db.EvalRange(range)).size());
  }
}

BENCHMARK(BM_Ablation_HashJoins)
    ->Args({1, 32})
    ->Args({0, 32})
    ->Args({1, 64})
    ->Args({0, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacon

int main(int argc, char** argv) {
  return datacon::bench::RunBenchmarks(argc, argv, "fixpoint");
}
