// Experiment E15 — overhead of the telemetry plane.
//
// The same chain-closure workload evaluated with the structured event log
// OFF (the default: every emission site is a single relaxed atomic load)
// and ON (events are built and appended to the bounded ring). The OFF/ON
// gap bounds the cost a user pays for turning telemetry on; the OFF
// number pins the claim that a disabled event log is free to within
// measurement noise, since instruments (histograms, resource attribution)
// are always live and identical in both regimes.
//
//  - repeat: an unchanged query repeated against a warm cache — the
//            cheapest evaluations the engine does, so per-query telemetry
//            cost is the largest relative fraction. Worst case for ON.
//  - churn:  one fresh edge inserted before each repeat, driving delta
//            maintenance — a realistic mixed read/write loop that emits
//            cache.delta and query events every iteration.
//  - emit:   the raw cost of EventLog::Emit itself, enabled vs disabled,
//            isolating the fast path from evaluator noise.

#include <benchmark/benchmark.h>

#include <memory>

#include "ast/builder.h"
#include "bench_util.h"
#include "common/eventlog.h"
#include "core/database.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction
using bench::Must;
using bench::MustValue;

constexpr int kChain = 192;

/// The unbound closure query `{ EACH v IN g_E {g_tc}: TRUE }`.
CalcExprPtr ClosureQuery() {
  return Union(
      {IdentityBranch("v", Constructed(Rel("g_E"), "g_tc"), True())});
}

std::unique_ptr<Database> MakeDb(bool events_on) {
  DatabaseOptions options;
  options.use_capture_rules = false;  // exercise the generic engine + cache
  options.specialize = false;
  options.events = events_on;
  auto db = std::make_unique<Database>(options);
  Must(workload::SetupClosure(db.get(), "g", workload::Chain(kChain)));
  return db;
}

void ExportEventCounters(benchmark::State& state, const Database& db,
                         size_t rows) {
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["events_kept"] =
      static_cast<double>(db.events().Events().size());
  state.counters["events_dropped"] = static_cast<double>(db.events().dropped());
}

/// Repeat an unchanged query against a warm cache: each iteration is a
/// cache hit plus (when ON) a query.start / cache.hit / query.finish
/// emission — the highest telemetry-to-work ratio the engine exhibits.
void BM_Observe_RepeatQuery(benchmark::State& state) {
  const bool events_on = state.range(0) != 0;
  std::unique_ptr<Database> db = MakeDb(events_on);
  CalcExprPtr query = ClosureQuery();
  size_t rows = MustValue(db->EvalQuery(query)).size();
  for (auto _ : state) {
    rows = MustValue(db->EvalQuery(query)).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["events"] = events_on ? 1.0 : 0.0;
  ExportEventCounters(state, *db, rows);
}

/// Insert-only churn: a one-tuple base delta before every repeat. Each
/// iteration pays delta maintenance plus (when ON) the full event fan-out
/// for a mutating workload.
void BM_Observe_InsertChurn(benchmark::State& state) {
  const bool events_on = state.range(0) != 0;
  std::unique_ptr<Database> db = MakeDb(events_on);
  CalcExprPtr query = ClosureQuery();
  size_t rows = MustValue(db->EvalQuery(query)).size();
  int64_t next_node = kChain;
  for (auto _ : state) {
    Must(db->Insert(
        "g_E", Tuple({Value::Int(next_node), Value::Int(next_node + 1)})));
    next_node += 2;
    rows = MustValue(db->EvalQuery(query)).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["events"] = events_on ? 1.0 : 0.0;
  ExportEventCounters(state, *db, rows);
}

/// EventLog::Emit in isolation. Disabled (Arg 0) must cost one relaxed
/// atomic load; enabled (Arg 1) pays field construction plus the ring
/// append under its mutex.
void BM_Observe_Emit(benchmark::State& state) {
  EventLog log;
  log.set_enabled(state.range(0) != 0);
  int64_t i = 0;
  for (auto _ : state) {
    log.Emit("bench.tick", {EventField::Int("i", i++)});
  }
  state.counters["events"] = state.range(0) != 0 ? 1.0 : 0.0;
  state.counters["events_dropped"] = static_cast<double>(log.dropped());
}

BENCHMARK(BM_Observe_RepeatQuery)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Observe_InsertChurn)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Observe_Emit)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace datacon

int main(int argc, char** argv) {
  return datacon::bench::RunBenchmarks(argc, argv, "observe");
}
